// Package lowerbound turns the proof of Theorem 2 — any weak consensus
// algorithm needs at least t²/32 messages, even against omission faults —
// into an executable falsifier.
//
// Given any weak consensus protocol (as a deterministic machine factory
// with a claimed decision-round bound), Falsify replays the paper's
// construction:
//
//  1. Probe the fully-correct executions E_0 and E_1 (Weak Validity).
//  2. Probe E_B(1)_0 and E_C(1)_1 and learn the "default bit" d that group
//     A decides whenever faults appear at round 1 (Lemma 3).
//  3. Interpolate: scan E_B(k)_v for v = 1-d until group A's decision
//     flips from d to v at some critical round R+1 (Lemma 4).
//  4. Merge E_B(R+1)_v with E_C(R)_v (Algorithm 5 / Lemma 16): the merged
//     execution forces a majority of B toward v and a majority of C toward
//     d, so group A must disagree with one of them.
//  5. Apply the Lemma 2 swap argument: pick an isolated process with fewer
//     than t/2 receive-omissions from correct senders that disagrees with
//     (or never reaches) A's decision, and swap its receive-omissions into
//     send-omissions (Algorithm 4). The result is a *valid* execution with
//     at most t faults in which two correct processes disagree, a correct
//     process never decides, or Weak Validity breaks.
//
// Every certificate is re-validated from scratch: the execution satisfies
// the Appendix A.1.6 guarantees, every process's recorded behavior is
// reproduced by re-running its machine (sim.Conforms), and the violation
// itself is re-read off the trace. For sound (necessarily Ω(t²)-message)
// protocols, the construction finds no such process and the falsifier
// reports the observed message complexities instead — which the theorem
// says must reach t²/32 somewhere along the way.
package lowerbound

import (
	"context"
	"fmt"

	"expensive/internal/experiments/runner"
	"expensive/internal/msg"
	"expensive/internal/obs"
	"expensive/internal/omission"
	"expensive/internal/proc"
	"expensive/internal/sim"
)

// Violation is a machine-checkable counterexample to weak consensus.
type Violation struct {
	// Kind is "agreement", "termination" or "weak-validity".
	Kind string
	// Exec is the certified execution.
	Exec *sim.Execution
	// Witness1 is a correct process with decision D1.
	Witness1 proc.ID
	D1       msg.Value
	// Witness2 is a correct process that decided D2 ("agreement"), never
	// decided ("termination"), or decided D2 violating unanimity
	// ("weak-validity").
	Witness2 proc.ID
	D2       msg.Value
	// Note narrates how the construction reached this certificate.
	Note string
}

func (v *Violation) String() string {
	switch v.Kind {
	case "termination":
		return fmt.Sprintf("termination violation: correct %s never decides (%s)", v.Witness2, v.Note)
	case "weak-validity":
		return fmt.Sprintf("weak validity violation: correct %s decides %q in a unanimous fault-free execution (%s)",
			v.Witness2, v.D2, v.Note)
	default:
		return fmt.Sprintf("agreement violation: correct %s decides %q, correct %s decides %q (%s)",
			v.Witness1, v.D1, v.Witness2, v.D2, v.Note)
	}
}

// Report is the falsifier's outcome for one protocol and one (n, t).
type Report struct {
	Protocol string
	N, T     int
	// Threshold is the paper's bound t²/32 (integer floor).
	Threshold int
	// MaxCorrectMessages is the largest message complexity observed across
	// all probe executions.
	MaxCorrectMessages int
	// Executions counts the probe executions constructed.
	Executions int
	// Violation is non-nil when the construction produced a counterexample.
	Violation *Violation
	// Log narrates the construction, step by step.
	Log []string
}

// Broken reports whether the protocol was falsified.
func (r *Report) Broken() bool { return r.Violation != nil }

// Options tune the falsifier.
type Options struct {
	// Horizon overrides the probe-execution length (default roundBound+2).
	Horizon int
	// DisableMerge skips steps 3-5 (the Lemma 3/4/5 machinery), keeping
	// only the direct Lemma 2 attempts on isolation probes. This is the
	// ablation showing the merge argument is load-bearing.
	DisableMerge bool
	// Parallelism fans out independent simulation probes — the
	// fully-correct pair E_0/E_1, the default-bit pair E_B(1)_0/E_C(1)_1,
	// and the Lemma 4 interpolation family E_B(k)_v — across a worker
	// pool. <= 0 means runtime.NumCPU(); 1 forces the fully serial path.
	// Each probe is still a single-threaded sim.Run (the determinism
	// contract); probe *analysis* stays sequential in construction order,
	// so the report is byte-identical at every parallelism level. Parallel
	// runs may merely compute speculative probes the serial path would
	// have skipped. The factory must tolerate concurrent machine
	// construction when Parallelism != 1 (every factory in this module
	// does — machines share no mutable state).
	Parallelism int
	// Ctx cancels the construction between (and, in parallel mode, inside)
	// probe waves; nil means context.Background().
	Ctx context.Context
}

// context resolves the effective context of the run.
func (o Options) context() context.Context {
	if o.Ctx == nil {
		return context.Background()
	}
	return o.Ctx
}

type falsifier struct {
	name    string
	factory sim.Factory
	bound   int
	n, t    int
	horizon int
	opts    Options
	report  *Report

	// Telemetry handles, nil when no recorder rides on opts.Ctx. Strictly
	// a side channel: the report (executions, log, violation) depends only
	// on the construction, never on these.
	execs *obs.Counter // falsify_executions: probe executions observed
	sink  *obs.Sink
}

// Falsify runs the Theorem 2 construction against a weak consensus
// protocol. factory builds the honest machines; roundBound is the
// protocol's claimed decision round for correct processes in every
// execution with at most t faults. Errors indicate harness failures, not
// protocol failures — those are returned inside the report.
func Falsify(name string, factory sim.Factory, roundBound, n, t int, opts Options) (*Report, error) {
	if t < 8 || t >= n {
		return nil, fmt.Errorf("falsify: need 8 <= t < n (partition groups of t/4), got n=%d t=%d", n, t)
	}
	horizon := opts.Horizon
	if horizon <= 0 {
		horizon = roundBound + 2
	}
	f := &falsifier{
		name:    name,
		factory: factory,
		bound:   roundBound,
		n:       n,
		t:       t,
		horizon: horizon,
		opts:    opts,
		report: &Report{
			Protocol:  name,
			N:         n,
			T:         t,
			Threshold: t * t / 32,
		},
	}
	if rec := obs.From(opts.Ctx); rec != nil {
		f.execs = rec.Counter("falsify_executions")
		f.sink = rec.Sink()
	}
	if f.sink != nil {
		f.sink.Emit("falsify-start", "protocol", name, "n", n, "t", t, "round_bound", roundBound)
	}
	if err := f.run(); err != nil {
		return nil, err
	}
	if f.sink != nil {
		f.sink.Emit("falsify-end",
			"protocol", name, "executions", f.report.Executions,
			"max_correct_messages", f.report.MaxCorrectMessages,
			"threshold", f.report.Threshold, "broken", f.report.Broken())
	}
	return f.report, nil
}

func (f *falsifier) logf(format string, args ...any) {
	f.report.Log = append(f.report.Log, fmt.Sprintf(format, args...))
}

func (f *falsifier) observe(label string, e *sim.Execution) {
	f.report.Executions++
	f.execs.Inc()
	m := e.CorrectMessages()
	if m > f.report.MaxCorrectMessages {
		f.report.MaxCorrectMessages = m
	}
	f.logf("%s: %d rounds recorded, %d messages sent by correct processes (threshold t²/32 = %d)",
		label, e.Rounds, m, f.report.Threshold)
}

func (f *falsifier) uniform(v msg.Value) []msg.Value {
	ps := make([]msg.Value, f.n)
	for i := range ps {
		ps[i] = v
	}
	return ps
}

// probe is a deferred simulation probe: a Promise resolving to the
// execution, computed on the worker pool (or inline when serial).
type probe = runner.Promise[*sim.Execution]

// fullFetch builds the compute step of the fully-correct execution with
// unanimous proposal v at the given recording tier. Fetches are pure —
// safe to run concurrently.
func (f *falsifier) fullFetch(v msg.Value, rec sim.Recording) func() (*sim.Execution, error) {
	return func() (*sim.Execution, error) {
		cfg := sim.Config{N: f.n, T: f.t, Proposals: f.uniform(v), MaxRounds: f.horizon, Recording: rec}
		return sim.Run(cfg, f.factory, sim.NoFaults{})
	}
}

// isolatedFetch builds the compute step of E_group(k)_v at the given
// recording tier.
func (f *falsifier) isolatedFetch(group proc.Set, k int, v msg.Value, rec sim.Recording) func() (*sim.Execution, error) {
	return func() (*sim.Execution, error) {
		return omission.RunIsolatedAt(f.n, f.t, f.factory, v, group, k, f.horizon, rec)
	}
}

// ensureFullIsolated upgrades a lean isolated probe to a full trace by
// re-running the same deterministic configuration at sim.RecordFull —
// which also runs the Appendix A.1.6 and Definition 1 validation the lean
// probe skipped. Executions that already carry full traces pass through.
func (f *falsifier) ensureFullIsolated(e *sim.Execution, group proc.Set, k int) (*sim.Execution, error) {
	if e.Recording == sim.RecordFull {
		return e, nil
	}
	return f.isolatedFetch(group, k, e.Behaviors[0].Proposal, sim.RecordFull)()
}

// leanNeedsFull reports whether analyzing the lean isolated probe e can
// require message identities: a correct process undecided or disagreeing
// (the violation certificate must be a full trace), or an isolated group
// member whose decision differs from the correct processes' common one (a
// Lemma 2 swap candidate, which needs the receive-omission sets). When it
// returns false, correctDecision and lemma2 provably touch only decisions.
func (f *falsifier) leanNeedsFull(e *sim.Execution, group proc.Set) bool {
	var common msg.Value
	first := true
	for _, id := range e.Correct().Members() {
		d, ok := e.Decision(id)
		if !ok {
			return true
		}
		if first {
			common, first = d, false
		} else if d != common {
			return true
		}
	}
	for _, p := range group.Members() {
		if d, ok := e.Decision(p); !ok || d != common {
			return true
		}
	}
	return false
}

// inlineProbe wraps a single fetch as a lazily evaluated probe (no
// speculation, computed on first Wait).
func (f *falsifier) inlineProbe(fetch func() (*sim.Execution, error)) *probe {
	ps, _ := runner.Prefetch(f.opts.context(), 1, 1, func(int) (*sim.Execution, error) { return fetch() })
	return ps[0]
}

// runFull consumes the fully-correct execution with unanimous proposal v
// and checks Weak Validity and Termination on it. Probes arrive lean; a
// probe that is about to become a certificate is deterministically re-run
// at sim.RecordFull first, so every Violation.Exec is a full trace.
func (f *falsifier) runFull(v msg.Value, pr *probe) (*sim.Execution, error) {
	e, err := pr.Wait()
	if err != nil {
		return nil, fmt.Errorf("run E_%s: %w", v, err)
	}
	f.observe(fmt.Sprintf("E_%s (fully correct, unanimous %s)", v, v), e)
	if e.Recording != sim.RecordFull {
		violates := false
		for i := 0; i < f.n && !violates; i++ {
			d, ok := e.Decision(proc.ID(i))
			violates = !ok || d != v
		}
		if violates {
			if e, err = f.fullFetch(v, sim.RecordFull)(); err != nil {
				return nil, fmt.Errorf("run E_%s: full replay: %w", v, err)
			}
		}
	}
	for i := 0; i < f.n; i++ {
		d, ok := e.Decision(proc.ID(i))
		if !ok {
			f.report.Violation = &Violation{
				Kind:     "termination",
				Exec:     e,
				Witness2: proc.ID(i),
				Note:     fmt.Sprintf("fully-correct unanimous-%s execution, horizon %d >= bound %d", v, f.horizon, f.bound),
			}
			return nil, nil
		}
		if d != v {
			f.report.Violation = &Violation{
				Kind:     "weak-validity",
				Exec:     e,
				Witness2: proc.ID(i),
				D2:       d,
				Note:     fmt.Sprintf("all processes are correct and propose %s", v),
			}
			return nil, nil
		}
	}
	return e, nil
}

// decisionRound returns the first round by which every process of e has
// decided. It reads only decision trajectories, so it works at both
// recording tiers.
func decisionRound(e *sim.Execution) int {
	maxR := 1
	for _, b := range e.Behaviors {
		r := b.DecisionRound()
		if r == 0 {
			r = b.RoundsRecorded()
		}
		if r > maxR {
			maxR = r
		}
	}
	return maxR
}

// probeIsolated consumes E_G(k)_v, checks the correct processes agree,
// tries the direct Lemma 2 argument on the isolated group, and returns
// the execution plus the correct processes' common decision. A nil
// execution with nil error means a violation was recorded.
//
// Probes arrive lean (decisions and counts only). When every correct
// process and every isolated member decide one common value — the
// overwhelmingly common case for the protocols the construction grinds
// through — the analysis below provably never touches a message, and the
// lean trace suffices. Otherwise the probe is deterministically re-run at
// sim.RecordFull first (k is the isolation round, needed for the re-run).
func (f *falsifier) probeIsolated(label string, group proc.Set, k int, pr *probe) (*sim.Execution, msg.Value, error) {
	e, err := pr.Wait()
	if err != nil {
		return nil, msg.NoDecision, fmt.Errorf("probe %s: %w", label, err)
	}
	f.observe(label, e)
	if e.Recording != sim.RecordFull && f.leanNeedsFull(e, group) {
		if e, err = f.ensureFullIsolated(e, group, k); err != nil {
			return nil, msg.NoDecision, fmt.Errorf("probe %s: full replay: %w", label, err)
		}
	}
	bX, viol := f.correctDecision(e, label)
	if viol != nil {
		f.report.Violation = viol
		return nil, msg.NoDecision, nil
	}
	if viol := f.lemma2(e, group, bX, label); viol != nil {
		f.report.Violation = viol
		return nil, msg.NoDecision, nil
	}
	return e, bX, nil
}

// correctDecision extracts the common decision of the correct processes,
// or produces the execution itself as an agreement/termination
// certificate.
func (f *falsifier) correctDecision(e *sim.Execution, label string) (msg.Value, *Violation) {
	correct := e.Correct()
	var common msg.Value
	var first proc.ID = -1
	for _, id := range correct.Members() {
		d, ok := e.Decision(id)
		if !ok {
			return msg.NoDecision, &Violation{
				Kind:     "termination",
				Exec:     e,
				Witness2: id,
				Note:     fmt.Sprintf("%s: correct process undecided after %d rounds (bound %d)", label, e.Rounds, f.bound),
			}
		}
		if first < 0 {
			common, first = d, id
		} else if d != common {
			return msg.NoDecision, &Violation{
				Kind:     "agreement",
				Exec:     e,
				Witness1: first,
				D1:       common,
				Witness2: id,
				D2:       d,
				Note:     label,
			}
		}
	}
	return common, nil
}

// lemma2 applies the swap argument: find an isolated process p in group Y
// with fewer than t/2 receive-omitted messages from correct senders whose
// decision differs from bX (or is absent); swap its receive-omissions into
// send-omissions. If the resulting execution has at most t faults it is a
// certificate. Returns nil if no candidate qualifies (the Lemma 2
// conclusion holds — the protocol paid enough messages here).
func (f *falsifier) lemma2(e *sim.Execution, group proc.Set, bX msg.Value, label string) *Violation {
	correct := e.Correct()
	for _, p := range group.Members() {
		d, decided := e.Decision(p)
		if decided && d == bX {
			continue
		}
		mxp := len(omission.MessagesFromTo(e, correct, p))
		if 2*mxp >= f.t {
			f.logf("%s: %s disagrees (decided=%v %q) but receive-omits %d >= t/2 messages from correct senders — swap inapplicable",
				label, p, decided, d, mxp)
			continue
		}
		swapped, err := omission.SwapOmission(e, p)
		if err != nil {
			f.logf("%s: swap_omission(%s) inapplicable: %v", label, p, err)
			continue
		}
		if swapped.Faulty.Len() > f.t {
			f.logf("%s: swap_omission(%s) yields %d > t faulty processes", label, p, swapped.Faulty.Len())
			continue
		}
		// A correct witness from the original correct set survives the swap.
		witness := proc.ID(-1)
		for _, x := range correct.Members() {
			if !swapped.Faulty.Contains(x) {
				witness = x
				break
			}
		}
		if witness < 0 {
			f.logf("%s: swap_omission(%s) left no correct witness", label, p)
			continue
		}
		kind := "agreement"
		note := fmt.Sprintf("%s: Lemma 2 swap on %s (|M_X→p|=%d < t/2=%d)", label, p, mxp, f.t/2)
		if !decided {
			kind = "termination"
		}
		return &Violation{
			Kind:     kind,
			Exec:     swapped,
			Witness1: witness,
			D1:       bX,
			Witness2: p,
			D2:       d,
			Note:     note,
		}
	}
	return nil
}

// run drives the full construction. Probe executions are *computed* on
// the worker pool (speculatively, when Parallelism != 1) but *analyzed*
// strictly in construction order, so the report — observations, log
// lines, violations — is identical at every parallelism level.
func (f *falsifier) run() error {
	part, err := proc.NewPartition(f.n, f.t)
	if err != nil {
		return err
	}
	f.logf("partition: |A|=%d |B|=%d |C|=%d (t/4 = %d)", part.A.Len(), part.B.Len(), part.C.Len(), f.t/4)

	workers := runner.Workers(f.opts.Parallelism)

	// Wave 1: the four probes of Steps 1-2 have no mutual dependencies.
	// All probe waves run at the lean tier; consumers upgrade to full
	// traces (deterministic re-runs) only when a certificate, a Lemma 2
	// candidate, or a merge input demands message identities.
	wave1 := []func() (*sim.Execution, error){
		f.fullFetch(msg.Zero, sim.RecordDecisions),
		f.fullFetch(msg.One, sim.RecordDecisions),
		f.isolatedFetch(part.B, 1, msg.Zero, sim.RecordDecisions),
		f.isolatedFetch(part.C, 1, msg.One, sim.RecordDecisions),
	}
	p1, cancel1 := runner.Prefetch(f.opts.context(), workers, len(wave1), func(i int) (*sim.Execution, error) {
		return wave1[i]()
	})
	defer cancel1()

	// Step 1: Weak Validity on the fully-correct executions.
	e0, err := f.runFull(msg.Zero, p1[0])
	if err != nil || f.report.Violation != nil {
		return err
	}
	e1, err := f.runFull(msg.One, p1[1])
	if err != nil || f.report.Violation != nil {
		return err
	}

	// Step 2: the default bit (Lemma 3 on E_B(1)_0 and E_C(1)_1).
	eB1, dB, err := f.probeIsolated("E_B(1)_0", part.B, 1, p1[2])
	if err != nil || f.report.Violation != nil {
		return err
	}
	eC1, dC, err := f.probeIsolated("E_C(1)_1", part.C, 1, p1[3])
	if err != nil || f.report.Violation != nil {
		return err
	}
	f.logf("A decides %q in E_B(1)_0 and %q in E_C(1)_1", dB, dC)

	if f.opts.DisableMerge {
		f.logf("merge disabled (ablation): stopping after direct isolation probes")
		return nil
	}

	if dB != dC {
		// Lemma 3 is already violated: merge the round-1 pair directly.
		f.logf("default bits differ: merging E_B(1)_0 and E_C(1)_1 (Definition 2, k1=k2=1)")
		return f.mergeAndExtract(part, eB1, 1, eC1, 1)
	}
	d := dB
	if !msg.IsBit(d) {
		f.logf("correct processes decide non-binary value %q; treating the all-%s family as the interpolation family", d, msg.Zero)
		d = msg.One
	}
	v := msg.FlipBit(d)
	f.logf("default bit d=%q; interpolating over the unanimous-%s family (Lemma 4)", d, v)

	// Step 3: Lemma 4 interpolation over E_B(k)_v. The probes of the whole
	// family are mutually independent — only the *scan* for the critical
	// round is sequential — so they are prefetched as one wave; the scan
	// consumes them in order and cancels whatever lies beyond the critical
	// round.
	eV := e0
	if v == msg.One {
		eV = e1
	}
	rMax := decisionRound(eV)
	f.logf("all processes decide by round %d in E_%s", rMax, v)

	pB, cancelB := runner.Prefetch(f.opts.context(), workers, rMax+1, func(i int) (*sim.Execution, error) {
		return f.isolatedFetch(part.B, i+1, v, sim.RecordDecisions)()
	})
	defer cancelB()

	prev, prevDecision, err := f.probeIsolated(fmt.Sprintf("E_B(1)_%s", v), part.B, 1, pB[0])
	if err != nil || f.report.Violation != nil {
		return err
	}
	if prevDecision == v {
		// A does not decide the default under round-1 isolation of B in the
		// all-v family, yet decides d in E_C(1)_1: Lemma 3 pair (k=1, k=1).
		f.logf("A decides %q in E_B(1)_%s but %q in E_C(1)_1: merging the round-1 pair", prevDecision, v, d)
		eCpair := eC1
		return f.mergeAndExtract(part, prev, 1, eCpair, 1)
	}

	critical := -1
	var eBR, eBR1 *sim.Execution
	for k := 2; k <= rMax+1; k++ {
		cur, curDecision, err := f.probeIsolated(fmt.Sprintf("E_B(%d)_%s", k, v), part.B, k, pB[k-1])
		if err != nil || f.report.Violation != nil {
			return err
		}
		if curDecision != prevDecision {
			critical = k - 1
			eBR, eBR1 = prev, cur
			f.logf("critical round R=%d: A decides %q in E_B(%d)_%s and %q in E_B(%d)_%s (Lemma 4)",
				critical, prevDecision, critical, v, curDecision, k, v)
			break
		}
		prev, prevDecision = cur, curDecision
	}
	if critical < 0 {
		return fmt.Errorf("falsify %s: no critical round found up to %d although E_%s decides %q at isolation-free horizon — "+
			"this contradicts Lemma 4; engine or protocol nondeterminism suspected", f.name, rMax+1, v, v)
	}
	_ = eBR

	// Step 4: run E_C(R)_v and merge with E_B(R+1)_v (Lemma 5). This probe
	// depends on the critical round, so it cannot be prefetched.
	eCR, dCR, err := f.probeIsolated(fmt.Sprintf("E_C(%d)_%s", critical, v), part.C, critical,
		f.inlineProbe(f.isolatedFetch(part.C, critical, v, sim.RecordDecisions)))
	if err != nil || f.report.Violation != nil {
		return err
	}
	f.logf("A decides %q in E_C(%d)_%s", dCR, critical, v)
	f.logf("merging E_B(%d)_%s with E_C(%d)_%s (Definition 2: |k1-k2|=1, equal proposals)", critical+1, v, critical, v)
	return f.mergeAndExtract(part, eBR1, critical+1, eCR, critical)
}

// mergeAndExtract builds the merged execution and extracts the Lemma 2
// violation from whichever isolated group disagrees with group A. Merging
// splices message-level traces, so lean inputs are first upgraded to full
// ones by deterministic re-runs.
func (f *falsifier) mergeAndExtract(part proc.Partition, eB *sim.Execution, kB int, eC *sim.Execution, kC int) error {
	var err error
	if eB, err = f.ensureFullIsolated(eB, part.B, kB); err != nil {
		return fmt.Errorf("falsify %s: upgrade E_B(%d): %w", f.name, kB, err)
	}
	if eC, err = f.ensureFullIsolated(eC, part.C, kC); err != nil {
		return fmt.Errorf("falsify %s: upgrade E_C(%d): %w", f.name, kC, err)
	}
	merged, err := omission.Merge(omission.MergeSpec{Part: part, EB: eB, KB: kB, EC: eC, KC: kC}, f.factory, f.horizon)
	if err != nil {
		return fmt.Errorf("falsify %s: merge: %w", f.name, err)
	}
	f.observe(fmt.Sprintf("merged E_B(%d),C(%d)", kB, kC), merged)

	bA, viol := f.correctDecision(merged, "merged execution")
	if viol != nil {
		f.report.Violation = viol
		return nil
	}
	f.logf("group A decides %q in the merged execution", bA)
	for _, group := range []struct {
		name string
		set  proc.Set
	}{{"B", part.B}, {"C", part.C}} {
		if viol := f.lemma2(merged, group.set, bA, "merged/"+group.name); viol != nil {
			f.report.Violation = viol
			return nil
		}
	}
	f.logf("no Lemma 2 candidate in the merged execution: the protocol paid enough messages for every isolated process to stay informed")
	return nil
}
