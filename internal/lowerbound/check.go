package lowerbound

import (
	"fmt"

	"expensive/internal/msg"
	"expensive/internal/omission"
	"expensive/internal/proc"
	"expensive/internal/sim"
)

// CheckViolation independently verifies a certificate produced by Falsify:
//
//  1. the execution satisfies the five Appendix A.1.6 guarantees,
//  2. at most t processes are faulty,
//  3. every process's recorded behavior is exactly reproduced by
//     re-running the protocol's honest machine on its recorded inputs
//     (so the trace genuinely belongs to the protocol), and
//  4. the claimed violation is visible in the trace: two correct processes
//     with different decisions, a correct process undecided past the
//     protocol's round bound, or a correct process breaking Weak Validity
//     in a unanimous fault-free execution.
//
// A nil return means the counterexample stands on its own: the protocol is
// not a correct weak consensus algorithm.
func CheckViolation(v *Violation, factory sim.Factory, roundBound int) error {
	if v == nil {
		return fmt.Errorf("check: nil violation")
	}
	e := v.Exec
	if err := omission.Validate(e); err != nil {
		return fmt.Errorf("check: execution invalid: %w", err)
	}
	if e.Faulty.Len() > e.T {
		return fmt.Errorf("check: %d faulty processes exceed t=%d", e.Faulty.Len(), e.T)
	}
	if err := sim.Conforms(e, factory, proc.Set{}); err != nil {
		return fmt.Errorf("check: trace does not conform to the protocol: %w", err)
	}

	correct := e.Correct()
	switch v.Kind {
	case "agreement":
		if !correct.Contains(v.Witness1) || !correct.Contains(v.Witness2) {
			return fmt.Errorf("check: agreement witnesses %s, %s not both correct (faulty=%v)",
				v.Witness1, v.Witness2, e.Faulty)
		}
		d1, ok1 := e.Decision(v.Witness1)
		d2, ok2 := e.Decision(v.Witness2)
		if !ok1 || !ok2 {
			return fmt.Errorf("check: agreement witnesses not both decided")
		}
		if d1 == d2 {
			return fmt.Errorf("check: witnesses agree on %q; no agreement violation", d1)
		}
	case "termination":
		if !correct.Contains(v.Witness2) {
			return fmt.Errorf("check: termination witness %s not correct", v.Witness2)
		}
		if _, ok := e.Decision(v.Witness2); ok {
			return fmt.Errorf("check: termination witness decided")
		}
		if e.Rounds < roundBound {
			return fmt.Errorf("check: execution only ran %d < %d rounds; non-decision is not yet a violation",
				e.Rounds, roundBound)
		}
	case "weak-validity":
		if !e.Faulty.Empty() {
			return fmt.Errorf("check: weak-validity violation requires a fully correct execution")
		}
		u, err := omission.UniformProposal(e)
		if err != nil {
			return fmt.Errorf("check: weak-validity violation requires unanimous proposals: %w", err)
		}
		d, ok := e.Decision(v.Witness2)
		if !ok {
			return fmt.Errorf("check: weak-validity witness undecided")
		}
		if d == u {
			return fmt.Errorf("check: witness decided the unanimous proposal %q; no violation", u)
		}
	default:
		return fmt.Errorf("check: unknown violation kind %q", v.Kind)
	}
	return nil
}

// Candidate is a weak consensus protocol registered with the experiment
// harness: a constructor plus its decision-round bound and the shape of
// its message complexity for display.
type Candidate struct {
	Name string
	// Sound records whether the protocol is believed correct (the falsifier
	// must certify budget) or deliberately cheap (must be falsified).
	Sound bool
	// Complexity describes the protocol's message complexity for tables.
	Complexity string
	// Rounds returns the decision-round bound for (n, t).
	Rounds func(n, t int) int
	// New builds the factory for (n, t).
	New func(n, t int) (sim.Factory, error)
}

// ExpectedMessages returns a human-readable note for reports.
func (c Candidate) String() string {
	return fmt.Sprintf("%s (%s)", c.Name, c.Complexity)
}

// BitProposals builds a uniform proposal vector helper shared by tests.
func BitProposals(n int, v msg.Value) []msg.Value {
	out := make([]msg.Value, n)
	for i := range out {
		out[i] = v
	}
	return out
}
