package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of log-2 buckets a histogram holds. Bucket i
// counts observations v with bits.Len64(v) == i, i.e. v in [2^(i-1),
// 2^i); bucket 0 holds v == 0. Values whose bit length exceeds the last
// bucket (v >= 2^62) clamp into it, so the histogram never drops an
// observation — the overflow bucket absorbs the tail.
const histBuckets = 63

// Histogram is a log-bucketed (powers of two) histogram for latencies
// and sizes: nanoseconds, message counts, queue depths. Observations are
// lossy in value (a bucket spans one octave) but exact in count and sum.
// All mutation is atomic per bucket, so concurrent Observe calls and
// Merge are safe and — because atomic adds commute — merging per-worker
// histograms is order-independent.
//
// The nil *Histogram is the disabled instrument: every method no-ops (or
// returns zero) after one pointer check.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketOf maps an observation to its bucket index. Negative values
// clamp to bucket 0 (they only arise from clock adjustments mid-timing);
// huge values clamp to the overflow bucket.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// bucketHi returns the inclusive upper bound of bucket i (the value
// Quantile reports for observations landing there).
func bucketHi(i int) int64 {
	if i == 0 {
		return 0
	}
	if i >= histBuckets-1 {
		return math.MaxInt64
	}
	return int64(1)<<i - 1
}

// bucketLo returns the inclusive lower bound of bucket i.
func bucketLo(i int) int64 {
	if i == 0 {
		return 0
	}
	return int64(1) << (i - 1)
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// Count returns the number of observations (0 on the nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on the nil histogram).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Merge folds o's observations into h. Because every field is an atomic
// add of o's current value, merging a set of per-worker histograms
// produces the same result in any order — the property that lets
// telemetry aggregate worker-local instruments without coordinating.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	for i := range o.buckets {
		if c := o.buckets[i].Load(); c != 0 {
			h.buckets[i].Add(c)
		}
	}
}

// Quantile returns the upper bound of the bucket holding the q-quantile
// observation (q in [0, 1]). With zero observations it returns 0: an
// empty histogram has no tail, and callers render "–" off the zero
// Count, not a sentinel value. The answer is exact in rank, one octave
// wide in value.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the quantile observation.
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			return bucketHi(i)
		}
	}
	// Counts raced past the loaded total; the overflow bucket bounds it.
	return bucketHi(histBuckets - 1)
}

// HistBucket is one occupied bucket of a histogram snapshot.
type HistBucket struct {
	// Lo and Hi bound the bucket's value range, inclusive.
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// Buckets returns the occupied buckets in ascending value order (nil on
// the nil or empty histogram).
func (h *Histogram) Buckets() []HistBucket {
	if h == nil {
		return nil
	}
	var out []HistBucket
	for i := 0; i < histBuckets; i++ {
		if c := h.buckets[i].Load(); c != 0 {
			out = append(out, HistBucket{Lo: bucketLo(i), Hi: bucketHi(i), Count: c})
		}
	}
	return out
}

// Timer times one operation into a histogram. The zero Timer (from a nil
// histogram) is disabled: Stop returns 0 without reading the clock, so a
// timed hot loop with telemetry off never touches time at all.
type Timer struct {
	h     *Histogram
	start time.Time
}

// StartTimer starts timing an operation. On the nil histogram it returns
// the disabled (zero) Timer and does not read the clock.
func (h *Histogram) StartTimer() Timer {
	if h == nil {
		return Timer{}
	}
	return Timer{h: h, start: time.Now()}
}

// Stop observes the elapsed nanoseconds into the histogram and returns
// them (0 on the disabled timer).
func (t Timer) Stop() int64 {
	if t.h == nil {
		return 0
	}
	ns := time.Since(t.start).Nanoseconds()
	t.h.Observe(ns)
	return ns
}
