package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one structured trace event: a named point in a run's
// lifecycle (campaign/generation/cell spans, per-probe records,
// violation-found, shrink-step, corpus-save) with free-form attributes.
// Events serialize as one JSON object per line (JSONL); attribute maps
// encode with sorted keys (encoding/json's map behavior), so a single
// event's encoding is deterministic even though event *order* across
// workers is scheduling-dependent — the metrics file is explicitly on
// the nondeterministic side of the telemetry fence.
type Event struct {
	// TS is the event time in milliseconds since the sink was opened.
	TS float64 `json:"ts_ms"`
	// Name identifies the event ("campaign-start", "probe",
	// "violation-found", "shrink-step", "corpus-save", ...).
	Name string `json:"name"`
	// Attrs carries the event's key/value payload.
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Sink is a concurrency-safe JSONL trace-event writer. The nil *Sink is
// the disabled instrument; hot loops additionally guard per-probe
// events with a plain nil check so attribute arguments are never even
// evaluated when tracing is off.
type Sink struct {
	mu    sync.Mutex
	enc   *json.Encoder
	start time.Time
	err   error
	n     int64
}

// NewSink returns a sink writing one JSON event per line to w.
func NewSink(w io.Writer) *Sink {
	return &Sink{enc: json.NewEncoder(w), start: time.Now()}
}

// Emit writes one event. kv lists attributes as alternating key/value
// pairs ("seed", 17, "kind", "agreement"); a trailing odd key is
// recorded under "!arg". Emit never fails loudly — the first write error
// is latched and reported by Err, and later events are dropped, so a
// full disk never turns telemetry into a harness failure.
func (s *Sink) Emit(name string, kv ...any) {
	if s == nil {
		return
	}
	var attrs map[string]any
	if len(kv) > 0 {
		attrs = make(map[string]any, (len(kv)+1)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			attrs[fmt.Sprint(kv[i])] = kv[i+1]
		}
		if len(kv)%2 != 0 {
			attrs["!arg"] = kv[len(kv)-1]
		}
	}
	e := Event{TS: float64(time.Since(s.start).Microseconds()) / 1e3, Name: name, Attrs: attrs}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if err := s.enc.Encode(e); err != nil {
		s.err = fmt.Errorf("obs: trace sink: %w", err)
		return
	}
	s.n++
}

// Events returns the number of events written so far.
func (s *Sink) Events() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Err returns the latched first write error, nil while the sink is
// healthy.
func (s *Sink) Err() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// WriteMetrics appends the recorder's current instruments to w, one
// metric JSON object per line — the same JSONL stream trace events use,
// distinguishable by the "type" field (events have "name"/"ts_ms",
// metrics "type"). The snapshot order is deterministic (sorted), so a
// metrics dump of identical instrument states is byte-identical.
func (r *Recorder) WriteMetrics(w io.Writer) error {
	if r == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, m := range r.Snapshot() {
		if err := enc.Encode(m); err != nil {
			return fmt.Errorf("obs: write metrics: %w", err)
		}
	}
	return nil
}
