package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// ProgressConfig parameterizes a live progress printer.
type ProgressConfig struct {
	// Task labels the lines ("hunt floodset vs targeted-withhold").
	Task string
	// Total is the expected number of work units (probes); 0 means
	// unknown — lines then omit the percentage and ETA.
	Total int64
	// Current reads the completed unit count, typically a Counter's Value
	// bound at setup. Required.
	Current func() int64
	// W receives the lines; progress is human-oriented chatter, so
	// callers pass stderr — stdout stays clean for reports.
	W io.Writer
	// Interval is the print period (default 1s).
	Interval time.Duration
}

// Progress prints live progress lines ("12345/65536 probes (18.8%) ·
// 13021 probes/s · ETA 4.1s") on a background goroutine until stopped.
// It reads counters and the clock but feeds nothing back into the run —
// strictly a side channel, like every obs instrument.
type Progress struct {
	cfg   ProgressConfig
	start time.Time
	stop  chan struct{}
	done  sync.WaitGroup
}

// StartProgress starts the printer. It returns nil (a no-op handle) when
// Current or W is missing, so callers can wire it unconditionally.
func StartProgress(cfg ProgressConfig) *Progress {
	if cfg.Current == nil || cfg.W == nil {
		return nil
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	p := &Progress{cfg: cfg, start: time.Now(), stop: make(chan struct{})}
	p.done.Add(1)
	go p.loop()
	return p
}

func (p *Progress) loop() {
	defer p.done.Done()
	t := time.NewTicker(p.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			p.print(false)
		case <-p.stop:
			return
		}
	}
}

// print renders one line. final marks the closing line Stop emits.
func (p *Progress) print(final bool) {
	cur := p.cfg.Current()
	elapsed := time.Since(p.start)
	rate := 0.0
	if secs := elapsed.Seconds(); secs > 0 {
		rate = float64(cur) / secs
	}
	line := fmt.Sprintf("%s: %d", p.cfg.Task, cur)
	if p.cfg.Total > 0 {
		line = fmt.Sprintf("%s/%d probes (%.1f%%)", line, p.cfg.Total, 100*float64(cur)/float64(p.cfg.Total))
	} else {
		line += " probes"
	}
	line += fmt.Sprintf(" · %.0f probes/s", rate)
	if !final && p.cfg.Total > 0 && rate > 0 && cur < p.cfg.Total {
		eta := time.Duration(float64(p.cfg.Total-cur) / rate * float64(time.Second))
		line += fmt.Sprintf(" · ETA %s", eta.Round(100*time.Millisecond))
	}
	if final {
		line += fmt.Sprintf(" · done in %s", elapsed.Round(time.Millisecond))
	}
	fmt.Fprintln(p.cfg.W, line)
}

// Stop halts the printer and emits one final line with the closing
// count and wall time. Safe on the nil handle and idempotent-unsafe by
// design: call it exactly once, when the run finishes.
func (p *Progress) Stop() {
	if p == nil {
		return
	}
	close(p.stop)
	p.done.Wait()
	p.print(true)
}
