// Package obs is the flight recorder: a zero-overhead-when-off telemetry
// layer for the long-running probe engines — campaigns, the fuzzer,
// matrix sweeps, the falsifier, and the experiment runner pool.
//
// The package is built around one invariant, inherited from the rest of
// the repo: telemetry must never touch the deterministic fold path.
// Campaign, fuzz and matrix JSON reports are byte-identical at every
// parallelism level with telemetry on or off; everything obs records —
// counters, gauges, latency/size histograms, trace events, progress
// lines — is a side channel that reads engine state but is never read
// back by it.
//
// # The nil Recorder is the off switch
//
// Every instrument handle (*Counter, *Gauge, *Histogram, *Sink) and the
// *Recorder itself are nil-safe: with telemetry off, instrumented code
// holds nil handles and every operation returns after a single pointer
// check — no allocation, no atomic, no clock read. The zero-allocation
// property is pinned by TestDisabledOpsAllocFree and the
// BenchmarkObsDisabled benchmark in the root package. Hot loops resolve
// handles once, outside the loop:
//
//	rec := obs.From(ctx)               // nil when telemetry is off
//	probes := rec.Counter("probes")    // nil handle when rec is nil
//	for ... {
//		probes.Inc()                   // one pointer check when off
//	}
//
// # Clock discipline
//
// obs is a sanctioned clock-reading package: the balint wallclock
// analyzer allows time.Now inside obs (like runner.Stopwatch) precisely
// so that probe and fold code never reads the wall clock itself — it
// calls obs, and the nondeterministic values stay on the telemetry side
// channel.
package obs

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The nil *Counter
// is the disabled instrument: every method no-ops after one pointer
// check.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds delta.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count (0 on the nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (queue depth, corpus size). The
// nil *Gauge is the disabled instrument.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on the nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Recorder is the telemetry registry a run threads through its probe
// loops: named counters, gauges and histograms plus an optional trace
// sink. The nil *Recorder is the disabled implementation — every method
// returns a nil instrument (or no-ops) after a single pointer check, so
// an uninstrumented run pays nothing.
//
// Instruments are identified by name and created on first use; looking a
// name up twice returns the same handle, so concurrent subsystems
// aggregate into shared series (every campaign inside a matrix sweep
// increments the same "campaign_probes" counter).
type Recorder struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	sink     atomic.Pointer[Sink]
	start    time.Time
}

// New returns an enabled, empty recorder.
func New() *Recorder {
	return &Recorder{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		start:    time.Now(),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (the disabled instrument) on the nil recorder.
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// on the nil recorder.
func (r *Recorder) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named log-bucketed histogram, creating it on
// first use. Returns nil on the nil recorder.
func (r *Recorder) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// SetSink installs the trace-event sink (nil detaches it).
func (r *Recorder) SetSink(s *Sink) {
	if r == nil {
		return
	}
	r.sink.Store(s)
}

// Sink returns the installed trace sink, nil when the recorder is nil or
// no sink is attached. Hot loops guard per-probe events with a plain
// nil check on the returned handle.
func (r *Recorder) Sink() *Sink {
	if r == nil {
		return nil
	}
	return r.sink.Load()
}

// Uptime returns the wall time since the recorder was created (0 on the
// nil recorder).
func (r *Recorder) Uptime() time.Duration {
	if r == nil {
		return 0
	}
	return time.Since(r.start)
}

// Metric is one serialized instrument: a point-in-time view of a
// counter, gauge or histogram. The JSONL metrics dump and the expvar
// export both emit this shape.
type Metric struct {
	// Type is "counter", "gauge" or "histogram".
	Type string `json:"type"`
	Name string `json:"name"`
	// Value carries the counter count or gauge level.
	Value int64 `json:"value,omitempty"`
	// Histogram statistics.
	Count int64 `json:"count,omitempty"`
	Sum   int64 `json:"sum,omitempty"`
	P50   int64 `json:"p50,omitempty"`
	P90   int64 `json:"p90,omitempty"`
	P99   int64 `json:"p99,omitempty"`
	// Buckets lists the occupied log-2 buckets in ascending order.
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot returns every instrument as a Metric, sorted by (type, name)
// — a deterministic encoding order, so two snapshots of identical
// instrument states serialize identically. Returns nil on the nil
// recorder.
func (r *Recorder) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	// Collect and sort names before reading anything: map iteration order
	// must never reach an encoder (the repo-wide maporder discipline).
	cnames := make([]string, 0, len(r.counters))
	for name := range r.counters {
		cnames = append(cnames, name)
	}
	sort.Strings(cnames)
	gnames := make([]string, 0, len(r.gauges))
	for name := range r.gauges {
		gnames = append(gnames, name)
	}
	sort.Strings(gnames)
	hnames := make([]string, 0, len(r.hists))
	for name := range r.hists {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)

	out := make([]Metric, 0, len(cnames)+len(gnames)+len(hnames))
	for _, name := range cnames {
		out = append(out, Metric{Type: "counter", Name: name, Value: r.counters[name].Value()})
	}
	for _, name := range gnames {
		out = append(out, Metric{Type: "gauge", Name: name, Value: r.gauges[name].Value()})
	}
	for _, name := range hnames {
		h := r.hists[name]
		m := Metric{
			Type:    "histogram",
			Name:    name,
			Count:   h.Count(),
			Sum:     h.Sum(),
			Buckets: h.Buckets(),
		}
		m.P50, m.P90, m.P99 = h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99)
		out = append(out, m)
	}
	return out
}

// recorderKey is the context key Into/From share.
type recorderKey struct{}

// Into attaches the recorder to the context. Probe engines (campaigns,
// the fuzzer, matrix sweeps, the falsifier, the runner pool) read it
// back with From; a nil recorder attaches nothing.
func Into(ctx context.Context, r *Recorder) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, recorderKey{}, r)
}

// From extracts the recorder attached with Into, nil when the context is
// nil or carries none — the disabled recorder, on which every instrument
// lookup returns the disabled instrument.
func From(ctx context.Context) *Recorder {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(recorderKey{}).(*Recorder)
	return r
}
