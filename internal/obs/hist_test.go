package obs

import (
	"math"
	"math/rand"
	"testing"
)

// snapshot reads a histogram's full state for equality checks.
func snapshot(h *Histogram) (count, sum int64, buckets [histBuckets]int64) {
	count = h.Count()
	sum = h.Sum()
	for i := range h.buckets {
		buckets[i] = h.buckets[i].Load()
	}
	return
}

// TestHistogramMergeOrderIndependent is the satellite edge-case suite's
// core property: folding per-worker histograms into a global one yields
// the same state regardless of merge order, so parallel runs can
// aggregate worker-local instruments without coordination.
func TestHistogramMergeOrderIndependent(t *testing.T) {
	const workers = 5
	rng := rand.New(rand.NewSource(42))
	parts := make([]*Histogram, workers)
	for w := range parts {
		parts[w] = &Histogram{}
		for i := 0; i < 200; i++ {
			// Mix of small values, octave boundaries, and overflow.
			switch i % 4 {
			case 0:
				parts[w].Observe(rng.Int63n(1000))
			case 1:
				parts[w].Observe(int64(1) << uint(rng.Intn(62)))
			case 2:
				parts[w].Observe(0)
			default:
				parts[w].Observe(math.MaxInt64 - rng.Int63n(100))
			}
		}
	}

	fold := func(order []int) *Histogram {
		h := &Histogram{}
		for _, i := range order {
			h.Merge(parts[i])
		}
		return h
	}
	forward := fold([]int{0, 1, 2, 3, 4})
	reverse := fold([]int{4, 3, 2, 1, 0})
	shuffled := fold([]int{2, 0, 4, 1, 3})

	fc, fs, fb := snapshot(forward)
	for name, h := range map[string]*Histogram{"reverse": reverse, "shuffled": shuffled} {
		c, s, b := snapshot(h)
		if c != fc || s != fs || b != fb {
			t.Fatalf("%s merge order diverged: count %d vs %d, sum %d vs %d", name, c, fc, s, fs)
		}
	}
	// Quantiles agree too, since they derive from the bucket state.
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
		if forward.Quantile(q) != reverse.Quantile(q) {
			t.Fatalf("quantile %.2f differs across merge orders", q)
		}
	}
}

func TestHistogramZeroObservationQuantiles(t *testing.T) {
	h := &Histogram{}
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty histogram Quantile(%v) = %d, want 0", q, got)
		}
	}
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("empty histogram has nonzero count/sum")
	}
	if b := h.Buckets(); b != nil {
		t.Fatalf("empty histogram Buckets = %v, want nil", b)
	}
}

func TestHistogramOverflowClamping(t *testing.T) {
	h := &Histogram{}
	// Everything at or beyond the last bucket's lower bound clamps into
	// the overflow bucket rather than being dropped or panicking.
	huge := []int64{int64(1) << 62, math.MaxInt64, math.MaxInt64 - 1, (int64(1) << 62) + 12345}
	for _, v := range huge {
		h.Observe(v)
	}
	if got := h.Count(); got != int64(len(huge)) {
		t.Fatalf("count = %d, want %d (overflow must not drop observations)", got, len(huge))
	}
	if got := h.buckets[histBuckets-1].Load(); got != int64(len(huge)) {
		t.Fatalf("overflow bucket holds %d, want %d", got, len(huge))
	}
	if got := h.Quantile(0.5); got != math.MaxInt64 {
		t.Fatalf("overflow quantile = %d, want MaxInt64 (the overflow bucket's Hi)", got)
	}
	b := h.Buckets()
	if len(b) != 1 || b[0].Hi != math.MaxInt64 || b[0].Count != int64(len(huge)) {
		t.Fatalf("overflow bucket snapshot wrong: %+v", b)
	}

	// Negative observations clamp to bucket 0 alongside true zeros.
	neg := &Histogram{}
	neg.Observe(-5)
	neg.Observe(0)
	if got := neg.buckets[0].Load(); got != 2 {
		t.Fatalf("bucket 0 holds %d, want 2 (negatives clamp down)", got)
	}
	if got := neg.Quantile(1); got != 0 {
		t.Fatalf("all-clamped-to-zero quantile = %d, want 0", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	// v lands in the bucket whose [Lo, Hi] range contains it.
	cases := []struct {
		v      int64
		bucket int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4},
		{1 << 20, 21},
		{(1 << 21) - 1, 21},
	}
	for _, tc := range cases {
		if got := bucketOf(tc.v); got != tc.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", tc.v, got, tc.bucket)
		}
		if lo, hi := bucketLo(tc.bucket), bucketHi(tc.bucket); tc.v < lo || tc.v > hi {
			t.Errorf("value %d outside its bucket's range [%d, %d]", tc.v, lo, hi)
		}
	}
}

func TestHistogramQuantileRanks(t *testing.T) {
	h := &Histogram{}
	// 90 observations in bucket 4 ([8,15]) and 10 in bucket 10 ([512,1023]).
	for i := 0; i < 90; i++ {
		h.Observe(10)
	}
	for i := 0; i < 10; i++ {
		h.Observe(700)
	}
	if got := h.Quantile(0.5); got != 15 {
		t.Fatalf("p50 = %d, want 15 (bucket [8,15] upper bound)", got)
	}
	if got := h.Quantile(0.9); got != 15 {
		t.Fatalf("p90 = %d, want 15 (rank 90 is the last bucket-4 observation)", got)
	}
	if got := h.Quantile(0.95); got != 1023 {
		t.Fatalf("p95 = %d, want 1023", got)
	}
	if got := h.Quantile(1); got != 1023 {
		t.Fatalf("p100 = %d, want 1023", got)
	}
}
