package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// debugRecorder is the recorder the process-wide expvar export reads.
// expvar.Publish is global and permanent, so the export indirects
// through this pointer instead of capturing one recorder — the last
// ServeDebug call wins, and tests can serve repeatedly.
var debugRecorder atomic.Pointer[Recorder]

// publishOnce guards the process-global expvar registration.
var publishOnce sync.Once

// DebugServer is a live telemetry HTTP server: net/http/pprof profiles
// under /debug/pprof/, expvar (including the recorder's instruments
// under the "baexp_obs" variable) under /debug/vars, and a plain JSONL
// metrics snapshot under /metrics.
type DebugServer struct {
	// Addr is the bound listen address (useful with ":0").
	Addr string
	srv  *http.Server
	ln   net.Listener
}

// ServeDebug starts the telemetry server on addr and installs r as the
// recorder behind the expvar export. The server runs until Close; a
// failed listen is returned immediately.
func ServeDebug(addr string, r *Recorder) (*DebugServer, error) {
	publishOnce.Do(func() {
		expvar.Publish("baexp_obs", expvar.Func(func() any {
			return debugRecorder.Load().Snapshot()
		}))
	})
	debugRecorder.Store(r)

	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl")
		if err := debugRecorder.Load().WriteMetrics(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: pprof listen %s: %w", addr, err)
	}
	s := &DebugServer{
		Addr: ln.Addr().String(),
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		ln:   ln,
	}
	//balint:allow goleak Serve's accept loop is tied to DebugServer.Close: srv.Close closes the listener, Serve returns ErrServerClosed, and the obs callers defer Close on the same handle they got here
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns ErrServerClosed after Close
	return s, nil
}

// Close shuts the server down. Safe on the nil handle.
func (s *DebugServer) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
