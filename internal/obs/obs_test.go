package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderIsDisabled(t *testing.T) {
	var r *Recorder
	if c := r.Counter("x"); c != nil {
		t.Fatalf("nil recorder Counter = %v, want nil", c)
	}
	if g := r.Gauge("x"); g != nil {
		t.Fatalf("nil recorder Gauge = %v, want nil", g)
	}
	if h := r.Histogram("x"); h != nil {
		t.Fatalf("nil recorder Histogram = %v, want nil", h)
	}
	if s := r.Sink(); s != nil {
		t.Fatalf("nil recorder Sink = %v, want nil", s)
	}
	if snap := r.Snapshot(); snap != nil {
		t.Fatalf("nil recorder Snapshot = %v, want nil", snap)
	}
	if err := r.WriteMetrics(io.Discard); err != nil {
		t.Fatalf("nil recorder WriteMetrics: %v", err)
	}
	// And every disabled instrument op is callable.
	var c *Counter
	c.Inc()
	c.Add(7)
	var g *Gauge
	g.Set(3)
	g.Add(1)
	var h *Histogram
	h.Observe(9)
	h.Merge(nil)
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("nil histogram Quantile = %d", got)
	}
	if tm := h.StartTimer(); tm.Stop() != 0 {
		t.Fatal("disabled timer measured something")
	}
	var s *Sink
	s.Emit("probe", "seed", 1)
}

// TestDisabledOpsAllocFree pins the flight recorder's core contract:
// with telemetry off (nil handles), every hot-path operation is
// allocation-free. The <1% ns/op half of the contract is pinned by
// BenchmarkObsDisabled in the root package next to the lean-tier
// benchmarks.
func TestDisabledOpsAllocFree(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var s *Sink
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(5)
		h.Observe(17)
		h.StartTimer().Stop()
		_ = r.Counter("campaign_probes")
		if s != nil { // the hot-loop event guard
			s.Emit("probe", "seed", 1)
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled telemetry ops allocated %.1f per run, want 0", allocs)
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("probes")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("probes") != c {
		t.Fatal("same name must return the same counter handle")
	}
	g := r.Gauge("depth")
	g.Set(9)
	g.Add(-2)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	r := New()
	r.Counter("zeta").Add(1)
	r.Counter("alpha").Add(2)
	r.Gauge("mid").Set(3)
	r.Histogram("lat").Observe(100)
	snap := r.Snapshot()
	var names []string
	for _, m := range snap {
		names = append(names, m.Type+"/"+m.Name)
	}
	want := []string{"counter/alpha", "counter/zeta", "gauge/mid", "histogram/lat"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("snapshot order = %v, want %v", names, want)
	}

	var buf1, buf2 bytes.Buffer
	if err := r.WriteMetrics(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteMetrics(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("two metric dumps of the same state differ")
	}
}

func TestContextRoundTrip(t *testing.T) {
	if got := From(nil); got != nil {
		t.Fatalf("From(nil) = %v", got)
	}
	if got := From(context.Background()); got != nil {
		t.Fatalf("From(background) = %v", got)
	}
	r := New()
	ctx := Into(context.Background(), r)
	if got := From(ctx); got != r {
		t.Fatalf("From(Into(ctx, r)) = %v, want %v", got, r)
	}
	if ctx := Into(nil, nil); From(ctx) != nil {
		t.Fatal("Into(nil, nil) must yield a recorder-free context")
	}
}

func TestSinkEmitsParsableJSONL(t *testing.T) {
	var buf bytes.Buffer
	s := NewSink(&buf)
	s.Emit("campaign-start", "protocol", "floodset", "n", 8)
	s.Emit("probe", "seed", int64(3), "messages", 112)
	s.Emit("odd-args", "key")
	if s.Events() != 3 {
		t.Fatalf("Events = %d, want 3", s.Events())
	}
	if err := s.Err(); err != nil {
		t.Fatalf("sink error: %v", err)
	}
	sc := bufio.NewScanner(&buf)
	var lines int
	for sc.Scan() {
		lines++
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d does not parse: %v (%q)", lines, err, sc.Text())
		}
		if e.Name == "" {
			t.Fatalf("line %d missing name: %q", lines, sc.Text())
		}
	}
	if lines != 3 {
		t.Fatalf("got %d JSONL lines, want 3", lines)
	}
}

// errWriter fails every write after the first n bytes.
type errWriter struct{ fails bool }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.fails {
		return 0, fmt.Errorf("disk full")
	}
	return len(p), nil
}

func TestSinkLatchesWriteError(t *testing.T) {
	w := &errWriter{}
	s := NewSink(w)
	s.Emit("ok")
	w.fails = true
	s.Emit("fails")
	s.Emit("dropped")
	if s.Err() == nil {
		t.Fatal("sink must latch the write error")
	}
	if s.Events() != 1 {
		t.Fatalf("Events = %d, want 1 (post-error events dropped)", s.Events())
	}
}

func TestSinkConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	s := NewSink(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.Emit("probe", "worker", w, "i", i)
			}
		}(w)
	}
	wg.Wait()
	if s.Events() != 400 {
		t.Fatalf("Events = %d, want 400", s.Events())
	}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("interleaved write corrupted a line: %v (%q)", err, sc.Text())
		}
	}
}

func TestProgressLines(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	var cur int64 = 750
	p := StartProgress(ProgressConfig{
		Task:     "hunt",
		Total:    1000,
		Current:  func() int64 { return cur },
		W:        w,
		Interval: 5 * time.Millisecond,
	})
	time.Sleep(30 * time.Millisecond)
	p.Stop()
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "hunt: 750/1000 probes (75.0%)") {
		t.Fatalf("progress lines missing count/percent:\n%s", out)
	}
	if !strings.Contains(out, "probes/s") {
		t.Fatalf("progress lines missing rate:\n%s", out)
	}
	if !strings.Contains(out, "done in") {
		t.Fatalf("final line missing:\n%s", out)
	}
	// Unknown totals render without percent or ETA.
	buf.Reset()
	p2 := StartProgress(ProgressConfig{Task: "falsify", Current: func() int64 { return 42 }, W: w, Interval: time.Hour})
	p2.Stop()
	mu.Lock()
	out = buf.String()
	mu.Unlock()
	if !strings.Contains(out, "falsify: 42 probes") || strings.Contains(out, "%") {
		t.Fatalf("unknown-total line wrong:\n%s", out)
	}
	// Nil-handle and missing-config safety.
	var nilP *Progress
	nilP.Stop()
	if StartProgress(ProgressConfig{}) != nil {
		t.Fatal("StartProgress without Current/W must return the no-op handle")
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestServeDebug(t *testing.T) {
	r := New()
	r.Counter("campaign_probes").Add(123)
	r.Histogram("probe_ns").Observe(5000)
	srv, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return string(b)
	}

	if body := get("/metrics"); !strings.Contains(body, `"name":"campaign_probes"`) {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "baexp_obs") {
		t.Fatalf("/debug/vars missing the obs export:\n%s", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ index unexpected:\n%s", body)
	}
}

func TestRecorderConcurrentInstrumentCreation(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Counter("shared").Inc()
				r.Histogram("lat").Observe(int64(i))
				r.Gauge("depth").Set(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 1600 {
		t.Fatalf("shared counter = %d, want 1600", got)
	}
	if got := r.Histogram("lat").Count(); got != 1600 {
		t.Fatalf("histogram count = %d, want 1600", got)
	}
}
