package expensive_test

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"expensive"
)

func TestFacadeWeakConsensusLifecycle(t *testing.T) {
	n, tf := 5, 1
	factory, rounds := expensive.NewWeakConsensusPhaseKing(n, tf)
	proposals := []expensive.Value{expensive.One, expensive.One, expensive.One, expensive.One, expensive.One}
	cfg := expensive.RunConfig{N: n, T: tf, Proposals: proposals, MaxRounds: rounds + 1}
	exec, err := expensive.RunProtocol(cfg, factory, expensive.NoFaults())
	if err != nil {
		t.Fatalf("RunProtocol: %v", err)
	}
	if err := expensive.ValidateExecution(exec); err != nil {
		t.Errorf("ValidateExecution: %v", err)
	}
	d, err := exec.CommonDecision(expensive.Universe(n))
	if err != nil || d != expensive.One {
		t.Errorf("decision %q err %v", d, err)
	}
}

func TestFacadeBroadcastAndIC(t *testing.T) {
	n, tf := 4, 1
	scheme := expensive.NewIdealScheme("api-test")
	bb, rounds := expensive.NewDolevStrongBroadcast(n, tf, 2, scheme, "⊥")
	cfg := expensive.RunConfig{
		N: n, T: tf,
		Proposals: []expensive.Value{"a", "b", "proposal-c", "d"},
		MaxRounds: rounds + 1,
	}
	exec, err := expensive.RunProtocol(cfg, bb, expensive.NoFaults())
	if err != nil {
		t.Fatal(err)
	}
	d, err := exec.CommonDecision(expensive.Universe(n))
	if err != nil || d != "proposal-c" {
		t.Errorf("broadcast decision %q err %v", d, err)
	}

	icf, icRounds := expensive.NewInteractiveConsistency(n, tf, scheme, "⊥")
	cfg.MaxRounds = icRounds + 1
	exec, err = expensive.RunProtocol(cfg, icf, expensive.NoFaults())
	if err != nil {
		t.Fatal(err)
	}
	dv, err := exec.CommonDecision(expensive.Universe(n))
	if err != nil {
		t.Fatal(err)
	}
	vec, err := expensive.DecodeVector(dv)
	if err != nil || len(vec) != n || vec[2] != "proposal-c" {
		t.Errorf("IC vector %v err %v", vec, err)
	}
}

func TestFacadeFalsifier(t *testing.T) {
	n, tf := 40, 16
	factory := silentFactory()
	rep, err := expensive.FalsifyWeakConsensus("silent", factory, 1, n, tf)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Broken() {
		t.Fatal("silent protocol not falsified")
	}
	if err := expensive.CheckViolation(rep.Violation, factory, 1); err != nil {
		t.Fatalf("CheckViolation: %v", err)
	}
}

func silentFactory() expensive.Factory {
	return func(id expensive.ProcessID, proposal expensive.Value) expensive.Machine {
		return &silentM{v: proposal}
	}
}

type silentM struct {
	v       expensive.Value
	decided bool
}

func (m *silentM) Init() []expensive.Outgoing { return nil }
func (m *silentM) Step(round int, _ []expensive.Message) []expensive.Outgoing {
	if round == 1 {
		m.decided = true
	}
	return nil
}
func (m *silentM) Decision() (expensive.Value, bool) {
	if !m.decided {
		return "", false
	}
	return m.v, true
}
func (m *silentM) Quiescent() bool { return true }

func TestFacadeSolvability(t *testing.T) {
	p := expensive.StrongProblem(4, 2)
	verdict := expensive.CheckSolvability(p)
	if verdict.Authenticated {
		t.Error("strong consensus at n=2t should be unsolvable")
	}
	if _, err := expensive.SolveAuthenticated(p, expensive.NewIdealScheme("api")); err == nil {
		t.Error("expected derivation refusal")
	}

	q := expensive.WeakProblem(4, 1)
	d, err := expensive.SolveUnauthenticated(q)
	if err != nil {
		t.Fatalf("SolveUnauthenticated: %v", err)
	}
	c, err := expensive.NewInputConfig(4, map[expensive.ProcessID]expensive.Value{
		0: expensive.Zero, 1: expensive.Zero, 2: expensive.Zero, 3: expensive.Zero,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := expensive.CheckDerived(q, d, c, nil); err != nil {
		t.Errorf("CheckDerived: %v", err)
	}
}

func TestFacadeAlgorithm1(t *testing.T) {
	n, tf := 5, 1
	inner, rounds := expensive.NewPhaseKing(n, tf)
	c0 := []expensive.Value{expensive.Zero, expensive.Zero, expensive.Zero, expensive.Zero, expensive.Zero}
	c1 := []expensive.Value{expensive.One, expensive.One, expensive.One, expensive.One, expensive.One}
	wrapped, spec, err := expensive.DeriveWeakFromAgreement(inner, n, tf, rounds+2, c0, c1)
	if err != nil {
		t.Fatal(err)
	}
	if spec.V0 != expensive.Zero {
		t.Errorf("V0 = %q", spec.V0)
	}
	cfg := expensive.RunConfig{N: n, T: tf, Proposals: c1, MaxRounds: rounds + 2}
	exec, err := expensive.RunProtocol(cfg, wrapped, expensive.NoFaults())
	if err != nil {
		t.Fatal(err)
	}
	d, err := exec.CommonDecision(expensive.Universe(n))
	if err != nil || d != expensive.One {
		t.Errorf("decision %q err %v", d, err)
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := expensive.ExperimentIDs()
	if len(ids) != 12 {
		t.Fatalf("ExperimentIDs = %v", ids)
	}
	tab, err := expensive.RunExperiment("E7")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.Render(), "Theorem 5") {
		t.Error("E7 render missing title")
	}
	if _, err := expensive.RunExperiment("nope"); err == nil {
		t.Error("expected unknown-experiment error")
	}

	infos := expensive.ListExperiments()
	if len(infos) != len(ids) {
		t.Fatalf("ListExperiments returned %d entries, want %d", len(infos), len(ids))
	}
	for i, info := range infos {
		if info.ID != ids[i] {
			t.Errorf("ListExperiments[%d].ID = %s, want %s", i, info.ID, ids[i])
		}
		if info.Title == "" {
			t.Errorf("%s: empty title", info.ID)
		}
	}

	results, err := expensive.RunExperiments(expensive.ExperimentOptions{Parallelism: 2}, "E7", "E10")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Table.ID != "E7" || results[1].Table.ID != "E10" {
		t.Fatalf("RunExperiments results out of order: %v", results)
	}
	for _, res := range results {
		if res.Probes <= 0 && res.Table.ID == "E10" {
			t.Errorf("%s: probe count %d, want > 0", res.Table.ID, res.Probes)
		}
		if res.Wall <= 0 {
			t.Errorf("%s: wall clock %v", res.Table.ID, res.Wall)
		}
	}
}

func TestFacadeTransports(t *testing.T) {
	n, tf := 4, 1
	factory, rounds := expensive.NewWeakConsensusEIG(n, tf)
	proposals := []expensive.Value{expensive.Zero, expensive.Zero, expensive.Zero, expensive.Zero}

	mem := expensive.NewMemMesh(n, nil)
	results, err := expensive.RunCluster(mem, n, factory, proposals, rounds)
	if err != nil {
		t.Fatal(err)
	}
	d, err := expensive.ClusterDecision(results, expensive.Universe(n))
	if err != nil || d != expensive.Zero {
		t.Errorf("mem decision %q err %v", d, err)
	}

	tcp, err := expensive.NewTCPMesh(n)
	if err != nil {
		t.Fatal(err)
	}
	results, err = expensive.RunCluster(tcp, n, factory, proposals, rounds)
	if err != nil {
		t.Fatal(err)
	}
	if d, err := expensive.ClusterDecision(results, expensive.Universe(n)); err != nil || d != expensive.Zero {
		t.Errorf("tcp decision %q err %v", d, err)
	}
}

func TestFacadeExternal(t *testing.T) {
	n, tf := 4, 1
	scheme := expensive.NewEd25519Scheme("api-ext", n, expensive.ClientID(0))
	auth := expensive.NewTxAuthority(scheme)
	tx, err := auth.NewTx(expensive.ClientID(0), "payload")
	if err != nil {
		t.Fatal(err)
	}
	if !auth.Valid(tx) {
		t.Fatal("authority rejects its own tx")
	}
	factory, rounds := expensive.NewExternalAgreement(n, tf, scheme, auth, tx)
	proposals := []expensive.Value{tx, tx, tx, tx}
	cfg := expensive.RunConfig{N: n, T: tf, Proposals: proposals, MaxRounds: rounds + 1}
	exec, err := expensive.RunProtocol(cfg, factory, expensive.NoFaults())
	if err != nil {
		t.Fatal(err)
	}
	d, err := exec.CommonDecision(expensive.Universe(n))
	if err != nil || d != tx {
		t.Errorf("decision %q err %v", d, err)
	}
}

func TestFacadeGradecastAndFloodSet(t *testing.T) {
	n, tf := 7, 2
	gc, rounds := expensive.NewGradecast(n, tf, 3)
	proposals := make([]expensive.Value, n)
	for i := range proposals {
		proposals[i] = "payload"
	}
	cfg := expensive.RunConfig{N: n, T: tf, Proposals: proposals, MaxRounds: rounds + 1}
	exec, err := expensive.RunProtocol(cfg, gc, expensive.NoFaults())
	if err != nil {
		t.Fatal(err)
	}
	d, err := exec.CommonDecision(expensive.Universe(n))
	if err != nil {
		t.Fatal(err)
	}
	grade, v, err := expensive.ParseGradecast(d)
	if err != nil || grade != 2 || v != "payload" {
		t.Errorf("gradecast output (%d, %q, %v)", grade, v, err)
	}

	fs, fsRounds := expensive.NewFloodSet(4, 1)
	cfg = expensive.RunConfig{N: 4, T: 1, Proposals: []expensive.Value{"c", "a", "b", "d"}, MaxRounds: fsRounds + 1}
	exec, err = expensive.RunProtocol(cfg, fs, expensive.NoFaults())
	if err != nil {
		t.Fatal(err)
	}
	if d, err := exec.CommonDecision(expensive.Universe(4)); err != nil || d != "a" {
		t.Errorf("floodset decision %q err %v", d, err)
	}

	es, esRounds := expensive.NewFloodSetEarlyStopping(4, 1)
	cfg.MaxRounds = esRounds + 1
	exec, err = expensive.RunProtocol(cfg, es, expensive.NoFaults())
	if err != nil {
		t.Fatal(err)
	}
	if d, err := exec.CommonDecision(expensive.Universe(4)); err != nil || d != "a" {
		t.Errorf("early floodset decision %q err %v", d, err)
	}
}

func TestFacadeReplicatedLog(t *testing.T) {
	n, tf := 5, 1
	protocol := func(slot int) (expensive.Factory, int) {
		return expensive.NewPhaseKing(n, tf)
	}
	log, err := expensive.NewReplicatedLog(n, tf, protocol, expensive.Zero)
	if err != nil {
		t.Fatal(err)
	}
	// Binary commands only for phase-king; submit a 1 at every replica so
	// the slot decides 1 regardless of king behavior.
	for i := 0; i < n; i++ {
		if err := log.Submit(expensive.ProcessID(i), expensive.One); err != nil {
			t.Fatal(err)
		}
	}
	entry, err := log.CommitSlot()
	if err != nil {
		t.Fatal(err)
	}
	if entry.Command != expensive.One {
		t.Errorf("committed %q", entry.Command)
	}
	if entry.Messages == 0 {
		t.Error("slot committed without messages")
	}
	if len(log.Entries()) != 1 {
		t.Errorf("log height %d", len(log.Entries()))
	}
}

func TestFacadeRenderExecution(t *testing.T) {
	factory, rounds := expensive.NewPhaseKing(5, 1)
	proposals := []expensive.Value{"0", "1", "0", "1", "0"}
	cfg := expensive.RunConfig{N: 5, T: 1, Proposals: proposals, MaxRounds: rounds + 1}
	exec, err := expensive.RunProtocol(cfg, factory, expensive.NoFaults())
	if err != nil {
		t.Fatal(err)
	}
	out := expensive.RenderExecution(exec, 4, map[string]expensive.ProcessSet{
		"kings": expensive.NewProcessSet(0, 1),
	})
	if !strings.Contains(out, "p0") || !strings.Contains(out, "kings") {
		t.Errorf("render missing content:\n%s", out)
	}
}

func TestErrorsAreDiagnosable(t *testing.T) {
	// Unsolvable errors can be matched through the facade.
	_, err := expensive.SolveUnauthenticated(expensive.WeakProblem(4, 2))
	if err == nil {
		t.Fatal("expected error")
	}
	var target error
	_ = target
	if !strings.Contains(err.Error(), "unsolvable") {
		t.Errorf("error %q lacks context", err)
	}
	if errors.Unwrap(err) == nil && !strings.Contains(err.Error(), "Theorem 4") {
		t.Errorf("error %q should carry the theorem context", err)
	}
}

func TestFacadeAdversaryHunt(t *testing.T) {
	// The full hunt lifecycle through the facade: campaign, violation,
	// shrink, independent recheck — the E10 FloodSet split as a one-liner.
	n, tf := 8, 2
	factory, rounds := expensive.NewFloodSet(n, tf)
	campaign := expensive.NewCampaign("floodset", factory, rounds, n, tf,
		expensive.StrategyTargetedWithhold(), expensive.SeedRange{From: 0, To: 16})
	campaign.Validity = expensive.CheckWeakValidity
	campaign.New = func(n, t int) (expensive.Factory, int, error) {
		f, r := expensive.NewFloodSet(n, t)
		return f, r, nil
	}
	report, err := campaign.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !report.Broken() {
		t.Fatal("targeted withholding should split FloodSet in 16 seeds")
	}
	v := report.Violations[0]
	opts := expensive.ShrinkOptions{
		Factory: factory, Rounds: rounds, N: n, T: tf,
		New: campaign.New, Validity: campaign.Validity,
	}
	shrunk, err := expensive.Shrink(v, opts)
	if err != nil {
		t.Fatalf("Shrink: %v", err)
	}
	if shrunk.OmitAfter > shrunk.OmitBefore {
		t.Errorf("shrink grew the plan: %v", shrunk)
	}
	v.Shrunk = shrunk
	if err := expensive.RecheckViolation(v, opts); err != nil {
		t.Fatalf("RecheckViolation: %v", err)
	}
}

func TestFacadeProblemCampaign(t *testing.T) {
	p := expensive.WeakProblem(4, 1)
	d, err := expensive.SolveAuthenticated(p, expensive.NewIdealScheme("api-hunt"))
	if err != nil {
		t.Fatal(err)
	}
	campaign, err := expensive.NewProblemCampaign(p, d,
		expensive.StrategyUnion(expensive.StrategyRandomOmission(40), expensive.StrategyChaos()),
		expensive.SeedRange{From: 0, To: 10})
	if err != nil {
		t.Fatal(err)
	}
	report, err := campaign.Run()
	if err != nil {
		t.Fatal(err)
	}
	if report.Broken() {
		t.Fatalf("derived weak consensus broken: %v", report.Violations[0])
	}
}

// TestFacadeProtocolCatalog exercises the first-class protocol surface:
// registry queries, introspection, checked builds with typed errors, and
// a registry-driven campaign with catalog-derived recheck options.
func TestFacadeProtocolCatalog(t *testing.T) {
	protos := expensive.Protocols()
	if len(protos) < 10 {
		t.Fatalf("catalog has %d protocols, expected the full library", len(protos))
	}
	pk, ok := expensive.LookupProtocol("phase-king")
	if !ok {
		t.Fatal("phase-king not registered")
	}
	if pk.Model != expensive.Unauthenticated || pk.Condition != "n > 4t" {
		t.Fatalf("phase-king taxonomy wrong: %q %q", pk.Model, pk.Condition)
	}
	if pk.SupportedAt(4, 1) || !pk.SupportedAt(5, 1) {
		t.Fatal("SupportedAt disagrees with n > 4t")
	}
	// Checked build: typed error outside the resilience condition.
	_, _, err := pk.Build(expensive.DefaultProtocolParams(4, 1))
	if !errors.Is(err, expensive.ErrUnsupported) {
		t.Fatalf("Build at n=4 t=1: err %v, want ErrUnsupported", err)
	}
	var pe *expensive.ProtocolParamsError
	if !errors.As(err, &pe) || pe.Protocol != "phase-king" {
		t.Fatalf("error %v is not a ParamsError naming phase-king", err)
	}
	factory, rounds, err := pk.Build(expensive.DefaultProtocolParams(5, 1))
	if err != nil {
		t.Fatal(err)
	}
	if factory == nil || rounds != 4 {
		t.Fatalf("phase-king build: rounds %d, want 4", rounds)
	}
}

// TestFacadeCampaignFor runs the registry-driven hunt lifecycle: find the
// E10 FloodSet split through a catalog handle and re-validate it with
// catalog-derived shrink options.
func TestFacadeCampaignFor(t *testing.T) {
	fs, ok := expensive.LookupProtocol("floodset")
	if !ok {
		t.Fatal("floodset not registered")
	}
	params := expensive.DefaultProtocolParams(8, 2)
	campaign, err := expensive.NewCampaignFor(fs, params,
		expensive.StrategyTargetedWithhold(), expensive.SeedRange{From: 0, To: 16})
	if err != nil {
		t.Fatal(err)
	}
	report, err := campaign.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !report.Broken() {
		t.Fatal("targeted withholding should split FloodSet in 16 seeds")
	}
	opts, err := expensive.ShrinkOptionsFor(fs, params)
	if err != nil {
		t.Fatal(err)
	}
	opts.Horizon = report.Horizon
	if err := expensive.RecheckViolation(report.Violations[0], opts); err != nil {
		t.Fatalf("recheck: %v", err)
	}
}

// TestFacadeFuzzer drives the coverage-guided hunt through the public
// surface: build from a catalog handle, run to the FloodSet split,
// recheck the certificate, persist and reload the corpus.
func TestFacadeFuzzer(t *testing.T) {
	fs, ok := expensive.LookupProtocol("floodset")
	if !ok {
		t.Fatal("floodset not registered")
	}
	params := expensive.DefaultProtocolParams(4, 3)
	fuzzer, err := expensive.NewFuzzerFor(fs, params, expensive.StrategyRandomSendOmission(40), 2048)
	if err != nil {
		t.Fatal(err)
	}
	fuzzer.StopOnViolation = true
	fuzzer.MaxViolations = 1
	report, err := fuzzer.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !report.Broken() {
		t.Fatalf("adaptive fuzzing should split FloodSet at t=n-1 within budget (probes %d, corpus %d)",
			report.Probes, report.CorpusSize)
	}
	if err := expensive.RecheckViolation(report.Violations[0], fuzzer.ShrinkOptions()); err != nil {
		t.Fatalf("recheck: %v", err)
	}

	path := filepath.Join(t.TempDir(), "corpus.json")
	if err := fuzzer.Corpus.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := expensive.LoadFuzzCorpus(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Size() != fuzzer.Corpus.Size() {
		t.Fatalf("corpus round-trip lost entries: %d -> %d", fuzzer.Corpus.Size(), loaded.Size())
	}

	// The raw constructor mirrors NewCampaign: unchecked, tune-then-run.
	factory, rounds := expensive.NewFloodSet(4, 3)
	raw := expensive.NewFuzzer("floodset", factory, rounds, 4, 3, expensive.StrategyRandomSendOmission(40), 64)
	raw.Validity = expensive.CheckWeakValidity
	if _, err := raw.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeMatrix runs a small registry-driven matrix and checks the
// skip/violation bookkeeping.
func TestFacadeMatrix(t *testing.T) {
	fs, _ := expensive.LookupProtocol("floodset")
	pk, _ := expensive.LookupProtocol("phase-king")
	m := expensive.NewMatrix(expensive.SeedRange{From: 0, To: 6})
	m.Protocols = []expensive.Protocol{fs, pk}
	m.Strategies = expensive.StrategyLibrary(40)[:2]
	m.Sizes = []expensive.MatrixSize{{N: 4, T: 1}, {N: 5, T: 1}}
	m.Parallelism = 2
	grid, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Cells) != 2*2*2 {
		t.Fatalf("grid has %d cells, want 8", len(grid.Cells))
	}
	if grid.SkippedCells == 0 {
		t.Fatal("phase-king at n=4 t=1 should be skipped")
	}
}

// TestFacadeCatalogConsumers drives the SMR and live-cluster layers off
// catalog handles.
func TestFacadeCatalogConsumers(t *testing.T) {
	pk, _ := expensive.LookupProtocol("phase-king")
	log, err := expensive.NewReplicatedLogFor(pk, expensive.DefaultProtocolParams(5, 1), expensive.Zero)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := log.Submit(expensive.ProcessID(i), expensive.One); err != nil {
			t.Fatal(err)
		}
	}
	if entry, err := log.CommitSlot(); err != nil || entry.Command != expensive.One {
		t.Fatalf("slot: %v %v", entry, err)
	}

	weig, _ := expensive.LookupProtocol("weak-eig")
	params := expensive.DefaultProtocolParams(4, 1)
	proposals := []expensive.Value{expensive.One, expensive.One, expensive.One, expensive.One}
	results, err := expensive.RunClusterFor(expensive.NewMemMesh(4, nil), weig, params, proposals)
	if err != nil {
		t.Fatal(err)
	}
	d, err := expensive.ClusterDecision(results, expensive.Universe(4))
	if err != nil || d != expensive.One {
		t.Fatalf("cluster decision %q err %v", d, err)
	}
}
