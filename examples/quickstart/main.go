// Quickstart: run binary weak consensus among five processes over an
// in-memory mesh (one goroutine per process), then show the Theorem 2
// price tag: the message count sits above the t²/32 floor.
package main

import (
	"fmt"
	"log"

	"expensive"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		n = 5
		t = 1
	)

	// Phase-King: unauthenticated strong consensus (n > 4t) — and binary
	// strong validity implies weak validity, so this is weak consensus too.
	// Protocols are first-class catalog values: look one up by ID and
	// build it with centrally validated parameters.
	proto, ok := expensive.LookupProtocol("weak-phase-king")
	if !ok {
		return fmt.Errorf("weak-phase-king is not in the catalog")
	}
	fmt.Printf("protocol: %s — %s (%s, %s)\n\n", proto.ID, proto.Title, proto.Model, proto.Condition)
	factory, rounds, err := proto.Build(expensive.DefaultProtocolParams(n, t))
	if err != nil {
		return fmt.Errorf("build: %w", err)
	}

	proposals := []expensive.Value{
		expensive.One, expensive.Zero, expensive.One, expensive.One, expensive.Zero,
	}

	mesh := expensive.NewMemMesh(n, nil)
	results, err := expensive.RunCluster(mesh, n, factory, proposals, rounds)
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}

	total := 0
	for _, r := range results {
		fmt.Printf("process %s proposed %s, decided %s (sent %d messages)\n",
			r.ID, proposals[r.ID], r.Decision, r.Sent)
		total += r.Sent
	}

	decision, err := expensive.ClusterDecision(results, expensive.Universe(n))
	if err != nil {
		return fmt.Errorf("agreement: %w", err)
	}
	fmt.Printf("\nunanimous decision: %s after %d rounds, %d messages total\n", decision, rounds, total)
	fmt.Printf("Theorem 2 floor for t=%d: t²/32 = %d messages — agreement is never free\n", t, t*t/32)
	return nil
}
