// Blockchain: the §4.3 scenario. Clients sign transactions; validators run
// agreement with External Validity — every decided block must carry a
// correct client signature — and commit a three-block chain, tolerating a
// Byzantine validator that proposes a forged transaction.
package main

import (
	"fmt"
	"log"

	"expensive"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		n = 4
		t = 1
	)

	// One Ed25519 keyspace for validators and clients (real signatures).
	scheme := expensive.NewEd25519Scheme("blockchain-demo", n,
		expensive.ClientID(0), expensive.ClientID(1), expensive.ClientID(2))
	authority := expensive.NewTxAuthority(scheme)

	genesis, err := authority.NewTx(expensive.ClientID(0), "genesis")
	if err != nil {
		return err
	}
	factory, rounds := expensive.NewExternalAgreement(n, t, scheme, authority, genesis)

	// Three slots: clients submit transactions, validators agree per slot.
	slots := []struct {
		client  int
		payload string
	}{
		{client: 1, payload: "alice-pays-bob-5"},
		{client: 2, payload: "bob-pays-carol-3"},
		{client: 1, payload: "alice-pays-dave-1"},
	}

	var chain []expensive.Value
	for slot, s := range slots {
		tx, err := authority.NewTx(expensive.ClientID(s.client), s.payload)
		if err != nil {
			return err
		}
		// All validators received the client's transaction from the mempool;
		// the Byzantine validator 3 proposes a *forged* transaction instead.
		proposals := []expensive.Value{tx, tx, tx, "tx|1001|steal-everything|forgedsig"}

		cfg := expensive.RunConfig{N: n, T: t, Proposals: proposals, MaxRounds: rounds + 1}
		exec, err := expensive.RunProtocol(cfg, factory, expensive.NoFaults())
		if err != nil {
			return fmt.Errorf("slot %d: %w", slot, err)
		}
		decision, err := exec.CommonDecision(expensive.Universe(n))
		if err != nil {
			return fmt.Errorf("slot %d agreement: %w", slot, err)
		}
		if !authority.Valid(decision) {
			return fmt.Errorf("slot %d: committed invalid block %q", slot, decision)
		}
		chain = append(chain, decision)
		fmt.Printf("slot %d committed: %.60s... (%d messages)\n", slot, decision, exec.CorrectMessages())
	}

	fmt.Printf("\nchain height %d — every block client-signed (External Validity held)\n", len(chain))
	fmt.Println("the forged proposal was never committed: validators verified signatures inside Γ")
	fmt.Printf("per Corollary 1, this agreement problem also obeys the Ω(t²) message bound\n")
	return nil
}
