// Hunt: find and shrink the attack that separates the crash model from
// the omission model.
//
// FloodSet is correct under crashes — but the paper's lower bound is
// proven against *omission* faults, and experiment E10 shows the gap is
// real: a faulty process that withholds its uniquely small value until
// the decision round and then reveals it to a single victim splits the
// decision. This program rediscovers that attack mechanically: a seeded
// campaign of targeted withholding adversaries fans out over the worker
// pool, finds the agreement split, shrinks it to a minimal fault plan
// (fewest faulty processes, fewest omitted messages, smallest n), and
// independently re-validates the final certificate.
package main

import (
	"errors"
	"fmt"
	"log"

	"expensive"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		n = 8
		t = 2
	)
	// The protocol is a catalog handle: its factory, round bound, weak
	// validity property, and the rebuild hook that lets the shrinker
	// reduce n all come from the registry.
	proto, ok := expensive.LookupProtocol("floodset")
	if !ok {
		return errors.New("floodset is not in the catalog")
	}
	params := expensive.DefaultProtocolParams(n, t)

	fmt.Printf("hunting %s (%s, %s) at n=%d t=%d\n", proto.ID, proto.Title, proto.Condition, n, t)
	fmt.Println("strategy: targeted-withhold — seed-chosen attacker, victim, and reveal round")
	fmt.Println()

	campaign, err := expensive.NewCampaignFor(proto, params,
		expensive.StrategyTargetedWithhold(), expensive.SeedRange{From: 0, To: 64})
	if err != nil {
		return err
	}
	campaign.Shrink = true
	campaign.MaxViolations = 1

	report, err := campaign.Run()
	if err != nil {
		return err
	}
	fmt.Printf("%d probes: messages %d..%d, %d violating seeds (%.0f probes/sec on %d workers)\n",
		report.Probes, report.Messages.Min, report.Messages.Max,
		report.ViolationCount, report.ProbesPerSec, report.Workers)
	if !report.Broken() {
		return errors.New("no violation found — the E10 attack must split FloodSet")
	}

	v := report.Violations[0]
	fmt.Printf("\nfound: %v\n", v)
	fmt.Printf("  as-found plan: %v\n", v.Plan)
	fmt.Printf("  shrunk:        %v\n", v.Shrunk)
	fmt.Printf("  minimal attack at n=%d: proposals %v, plan %v\n",
		v.Shrunk.N, v.Shrunk.Proposals, &v.Shrunk.Plan)

	// Nothing on faith: replay the minimal plan from scratch and re-check
	// the execution guarantees, the fault budget, machine conformance, and
	// the violation itself — with the campaign's own recheck options.
	if err := expensive.RecheckViolation(v, campaign.RecheckOptions()); err != nil {
		return fmt.Errorf("certificate failed independent validation: %w", err)
	}
	fmt.Println("  certificate independently re-validated ✓")

	fmt.Println("\nconclusion: crash-tolerance does not survive omission faults — the failure model")
	fmt.Println("of the Ω(t²) bound is genuinely stronger than crashes, and one withheld message")
	fmt.Println("stream is all it takes (experiment E10, now found and minimized mechanically)")
	return nil
}
