// Lowerbound: watch Theorem 2 break a plausible sub-quadratic protocol.
//
// The "leader" weak consensus protocol sends n-1 messages: the leader
// broadcasts its proposal, everyone follows, and anyone who notices a
// missing message defaults to 1. Weak Validity holds and every run looks
// fine — until the falsifier replays the paper's §3 construction and
// produces a concrete execution in which two correct processes disagree.
package main

import (
	"errors"
	"fmt"
	"log"

	"expensive"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		n = 40
		t = 16
	)

	// The protocol under attack: leader broadcast, n-1 messages, sub-t²/32.
	factory, rounds := leaderProtocol(n)

	fmt.Printf("falsifying the %d-message leader protocol at n=%d, t=%d (t²/32 = %d)\n\n",
		n-1, n, t, t*t/32)

	report, err := expensive.FalsifyWeakConsensus("leader", factory, rounds, n, t)
	if err != nil {
		return err
	}
	for _, line := range report.Log {
		fmt.Println("  " + line)
	}
	if !report.Broken() {
		return errors.New("protocol unexpectedly survived — Theorem 2 says it cannot")
	}

	v := report.Violation
	fmt.Printf("\ncounterexample found: %v\n", v)
	fmt.Printf("  faulty processes in the certificate execution: %v (t = %d)\n", v.Exec.Faulty, t)

	// Nothing is taken on faith: re-validate the certificate from scratch —
	// Appendix A execution guarantees, fault budget, and machine conformance
	// (every recorded behavior is reproduced by re-running the protocol).
	if err := expensive.CheckViolation(v, factory, rounds); err != nil {
		return fmt.Errorf("certificate failed independent validation: %w", err)
	}
	fmt.Println("  certificate independently re-validated ✓")
	fmt.Println("\nconclusion: no weak consensus algorithm can send fewer than t²/32 messages (Theorem 2)")
	return nil
}

// leaderProtocol builds the cheap candidate via the public machine API —
// the same machine interface every protocol in the library implements.
func leaderProtocol(n int) (expensive.Factory, int) {
	factory := func(id expensive.ProcessID, proposal expensive.Value) expensive.Machine {
		return &leaderMachine{n: n, id: id, proposal: proposal}
	}
	return factory, 1
}

type leaderMachine struct {
	n        int
	id       expensive.ProcessID
	proposal expensive.Value
	decided  bool
	decision expensive.Value
}

func (m *leaderMachine) Init() []expensive.Outgoing {
	if m.id != 0 {
		return nil
	}
	out := make([]expensive.Outgoing, 0, m.n-1)
	for p := expensive.ProcessID(1); p < expensive.ProcessID(m.n); p++ {
		out = append(out, expensive.Outgoing{To: p, Payload: string(m.proposal)})
	}
	return out
}

func (m *leaderMachine) Step(round int, received []expensive.Message) []expensive.Outgoing {
	if round != 1 {
		return nil
	}
	m.decided = true
	if m.id == 0 {
		m.decision = m.proposal
		return nil
	}
	m.decision = expensive.One // fault detected → default
	for _, rm := range received {
		if rm.Sender == 0 {
			m.decision = expensive.Value(rm.Payload)
		}
	}
	return nil
}

func (m *leaderMachine) Decision() (expensive.Value, bool) {
	if !m.decided {
		return "", false
	}
	return m.decision, true
}

func (m *leaderMachine) Quiescent() bool { return m.decided }
