// Fuzz: adaptive hunting finds what blind sweeping cannot afford.
//
// The E10 attack that splits crash-tolerant FloodSet under omission
// faults is a needle: the faulty holder of the uniquely small value must
// withhold it from everyone for every round and then reveal it to a
// single victim at the decision round. A blind seeded sweep of random
// omission plans essentially never produces that pattern at n >= 4 — each
// probe re-samples the same uninteresting behaviors. The coverage-guided
// fuzzer reaches it by feedback: it keeps every probe that drives the
// engine through a novel schedule shape (a hash over per-round message
// counts and the decision pattern, read off the allocation-free lean
// recording tier) in a replayable corpus, and mutates those parents —
// adding and shifting omission streaks, retargeting them, promoting
// omission-faulty processes to Byzantine machines, crossing plans over —
// until the search concentrates on the splitting corner of adversary
// space.
//
// This program runs both hunts with the same seed strategy and the same
// probe budget, then shrinks and independently re-validates what only the
// fuzzer found, and persists the corpus that found it.
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"expensive"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		n      = 4
		t      = n - 1 // the paper's extreme: all but one process corruptible
		budget = 2048
	)
	proto, ok := expensive.LookupProtocol("floodset")
	if !ok {
		return errors.New("floodset is not in the catalog")
	}
	params := expensive.DefaultProtocolParams(n, t)
	seed := expensive.StrategyRandomSendOmission(40)

	fmt.Printf("target: %s (%s) at n=%d t=%d, budget %d probes each\n\n", proto.ID, proto.Title, n, t, budget)

	// The blind control: a campaign sweeping fresh seeds of the same
	// strategy the fuzzer is seeded with.
	campaign, err := expensive.NewCampaignFor(proto, params, seed, expensive.SeedRange{From: 0, To: budget})
	if err != nil {
		return err
	}
	hunt, err := campaign.Run()
	if err != nil {
		return err
	}
	fmt.Printf("blind hunt:    %d probes, %d violating seeds (first at probe %d)\n",
		hunt.Probes, hunt.ViolationCount, hunt.FirstViolationProbe)

	// The adaptive hunt: same strategy seeds generation 0, then coverage
	// feedback takes over.
	fuzzer, err := expensive.NewFuzzerFor(proto, params, seed, budget)
	if err != nil {
		return err
	}
	fuzzer.Shrink = true
	fuzzer.StopOnViolation = true
	fuzzer.MaxViolations = 1
	report, err := fuzzer.Run()
	if err != nil {
		return err
	}
	fmt.Printf("adaptive fuzz: %d probes over %d generations, corpus %d entries, %d violating probes (first at probe %d)\n",
		report.Probes, report.Generations, report.CorpusSize, report.ViolationCount, report.FirstViolationProbe)
	if !report.Broken() {
		return errors.New("the fuzzer must reach the FloodSet split within budget")
	}
	if hunt.Broken() && hunt.FirstViolationProbe <= report.FirstViolationProbe {
		return errors.New("blind sweeping beat the fuzzer — the coverage signal is not earning its keep")
	}

	v := report.Violations[0]
	fmt.Printf("\nfound: %v\n", v)
	fmt.Printf("  as-found plan: %v\n", v.Plan)
	fmt.Printf("  shrunk:        %v\n", v.Shrunk)

	// Nothing on faith, exactly as with campaign violations: replay the
	// certificate from scratch and re-check everything.
	if err := expensive.RecheckViolation(v, fuzzer.ShrinkOptions()); err != nil {
		return fmt.Errorf("certificate failed independent validation: %w", err)
	}
	fmt.Println("  certificate independently re-validated ✓")

	// The corpus is the search's memory: persist it and a later run can
	// resume from the interesting region instead of re-seeding blindly.
	dir, err := os.MkdirTemp("", "fuzz-corpus-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "floodset.corpus.json")
	if err := fuzzer.Corpus.Save(path); err != nil {
		return err
	}
	loaded, err := expensive.LoadFuzzCorpus(path)
	if err != nil {
		return err
	}
	fmt.Printf("\ncorpus persisted and reloaded: %d replayable entries (protocol %s, n=%d t=%d)\n",
		loaded.Size(), loaded.Protocol, loaded.N, loaded.T)

	fmt.Println("\nconclusion: the lower bound's corner cases are reachable by feedback, not luck —")
	fmt.Println("coverage-guided mutation finds the crafted omission pattern orders of magnitude")
	fmt.Println("sooner than blind seed sweeping at the same probe cost")
	return nil
}
