// Solvability: define your own agreement problem and let Theorem 4 decide
// its fate.
//
// We invent "veto consensus": any correct 0-proposal (a veto) forces the
// decision to 0; with no vetoes the decision must be 1. The containment
// condition rejects it — a faulty-looking sub-configuration can hide all
// the vetoes. Weakening it to "quorum veto" (t+1 vetoes force 0, zero
// vetoes force 1, anything else is free) satisfies CC, and the library
// derives a working protocol for it automatically via Algorithm 2.
package main

import (
	"errors"
	"fmt"
	"log"

	"expensive"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func countZeros(c expensive.InputConfig) int {
	zeros := 0
	for _, id := range c.Pi().Members() {
		if v, _ := c.Proposal(id); v == expensive.Zero {
			zeros++
		}
	}
	return zeros
}

func run() error {
	const (
		n = 5
		t = 1
	)
	binary := []expensive.Value{expensive.Zero, expensive.One}

	strictVeto := expensive.Problem{
		Name: "strict-veto", N: n, T: t, Inputs: binary, Outputs: binary,
		Admissible: func(c expensive.InputConfig, v expensive.Value) bool {
			if countZeros(c) > 0 {
				return v == expensive.Zero
			}
			return v == expensive.One
		},
	}
	quorumVeto := expensive.Problem{
		Name: "quorum-veto", N: n, T: t, Inputs: binary, Outputs: binary,
		Admissible: func(c expensive.InputConfig, v expensive.Value) bool {
			switch zeros := countZeros(c); {
			case zeros >= t+1:
				return v == expensive.Zero
			case zeros == 0:
				return v == expensive.One
			default:
				return true
			}
		},
	}

	// Strict veto: the containment condition fails, so by Theorem 4 *no*
	// algorithm solves it — authenticated or not.
	verdict := expensive.CheckSolvability(strictVeto)
	fmt.Printf("%s (n=%d t=%d): CC=%v authenticated=%v unauthenticated=%v\n",
		strictVeto.Name, n, t, verdict.CC, verdict.Authenticated, verdict.Unauthenticated)
	if verdict.CCWitness != nil {
		fmt.Printf("  witness: %v\n", verdict.CCWitness)
	}
	if _, err := expensive.SolveAuthenticated(strictVeto, expensive.NewIdealScheme("veto")); err != nil {
		fmt.Printf("  derivation refused, as the theorem demands: %v\n\n", err)
	} else {
		return errors.New("derivation unexpectedly succeeded for an unsolvable problem")
	}

	// Quorum veto: CC holds — derive a protocol and run it.
	verdict = expensive.CheckSolvability(quorumVeto)
	fmt.Printf("%s (n=%d t=%d): CC=%v authenticated=%v unauthenticated=%v\n",
		quorumVeto.Name, n, t, verdict.CC, verdict.Authenticated, verdict.Unauthenticated)

	derived, err := expensive.SolveUnauthenticated(quorumVeto)
	if err != nil {
		return err
	}
	fmt.Printf("  derived automatically: %s, decides in %d rounds\n", derived.Mode, derived.Rounds)

	// Exercise the derived protocol on three interesting configurations.
	cases := []struct {
		name   string
		assign map[expensive.ProcessID]expensive.Value
	}{
		{"two vetoes (quorum)", map[expensive.ProcessID]expensive.Value{
			0: expensive.Zero, 1: expensive.Zero, 2: expensive.One, 3: expensive.One, 4: expensive.One}},
		{"no vetoes", map[expensive.ProcessID]expensive.Value{
			0: expensive.One, 1: expensive.One, 2: expensive.One, 3: expensive.One, 4: expensive.One}},
		{"one veto, one faulty", map[expensive.ProcessID]expensive.Value{
			0: expensive.Zero, 1: expensive.One, 2: expensive.One, 3: expensive.One}},
	}
	for _, tc := range cases {
		c, err := expensive.NewInputConfig(n, tc.assign)
		if err != nil {
			return err
		}
		if err := expensive.CheckDerived(quorumVeto, derived, c, nil); err != nil {
			return fmt.Errorf("%s: %w", tc.name, err)
		}
		fmt.Printf("  %-22s -> termination, agreement, validity all hold\n", tc.name)
	}
	fmt.Println("\nTheorem 4, live: CC is exactly the line between impossible and derivable.")
	return nil
}
