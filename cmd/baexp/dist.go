package main

// The distributed-campaign frontends: `baexp coord` owns a campaign and
// serves work units over TCP; `baexp worker` connects to a coordinator
// and probes. `coord -workers N` forks N worker processes of this very
// binary against its own listener, so the one-machine convenience mode
// exercises the identical wire path a cluster does. Reports stay
// byte-identical to `baexp hunt/fuzz/matrix -json` at any worker count.

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"expensive/internal/adversary"
	"expensive/internal/adversary/fuzz"
	"expensive/internal/catalog"
	"expensive/internal/dist"
	"expensive/internal/transport/chaosnet"
)

// defaultSizes mirrors the `baexp matrix` default grid.
const defaultSizes = "4:1,5:1,8:2"

func runCoord(args []string) error {
	fs := flag.NewFlagSet("coord", flag.ContinueOnError)
	kind := fs.String("kind", "hunt", "campaign kind: hunt|fuzz|matrix")
	addr := fs.String("addr", "127.0.0.1:0", "TCP listen address for workers")
	workers := fs.Int("workers", 0, "fork this many worker processes of this binary against the coordinator")
	inproc := fs.Int("inproc", 0, "run this many in-process workers (loopback TCP, same wire path)")
	parallel := fs.Int("parallel", 0, "probe worker count inside each local/forked worker (0 = NumCPU)")
	checkpoint := fs.String("checkpoint", "", "checkpoint file: progress persists there and a matching checkpoint resumes")
	every := fs.Int("every", 1, "completed units between checkpoint saves")
	hb := fs.Duration("hb", 0, "heartbeat timeout before a silent worker is declared dead (0 = 10s)")
	unitDeadline := fs.Duration("unit-deadline", 0, "per-unit execution deadline before a live straggler's unit is reassigned (0 = off)")
	retryBudget := fs.Int("retry-budget", 0, "reassignments per unit before it is quarantined (0 = default 3, negative = unlimited)")
	jsonOut := fs.Bool("json", false, "emit the deterministic JSON report (identical to the single-process subcommand's)")
	corpusPath := fs.String("corpus", "", "corpus file: loaded if present, saved after the run (fuzz)")

	collect := addJobFlags(fs)
	tf := addTelemetryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	job, err := buildJob(*kind, collect())
	if err != nil {
		return err
	}

	tel, err := tf.open()
	if err != nil {
		return err
	}
	defer tel.finish() //nolint:errcheck // surfaced by the explicit call below

	c := &dist.Coordinator{
		Job:               job,
		Addr:              *addr,
		CheckpointPath:    *checkpoint,
		CheckpointEvery:   *every,
		HeartbeatTimeout:  *hb,
		UnitDeadline:      *unitDeadline,
		RetryBudget:       *retryBudget,
		LocalWorkers:      *inproc,
		WorkerParallelism: *parallel,
		Ctx:               tel.ctx,
	}
	if *corpusPath != "" {
		// Only a genuinely absent file means "start fresh" — same contract
		// as `baexp fuzz -corpus`.
		corpus, err := fuzz.LoadCorpus(*corpusPath)
		switch {
		case errors.Is(err, os.ErrNotExist):
		case err != nil:
			return fmt.Errorf("-corpus: %w", err)
		default:
			c.Corpus = corpus
		}
	}
	if err := c.Start(); err != nil {
		return err
	}
	procs, err := forkWorkers(*workers, c.ListenAddr(), *parallel)
	if err != nil {
		return err
	}

	// SIGTERM means "stop cleanly, keep the progress": fold whatever is
	// in flight, persist the checkpoint, and exit 0 so a supervisor's
	// graceful shutdown (or a soak harness's kill) is resumable with the
	// same -checkpoint file.
	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, syscall.SIGTERM)
	defer signal.Stop(sigC)
	go func() {
		if _, ok := <-sigC; ok {
			fmt.Fprintln(os.Stderr, "baexp coord: SIGTERM — draining: folding in-flight units, checkpointing")
			c.Drain()
		}
	}()

	report, runErr := c.Run()
	// Forked workers exit on the coordinator's done message; reap them
	// before reporting so their stderr lands ahead of the verdict.
	for _, p := range procs {
		if werr := p.Wait(); werr != nil && runErr == nil {
			fmt.Fprintln(os.Stderr, "baexp coord: worker exited:", werr)
		}
	}
	if errors.Is(runErr, dist.ErrDrained) {
		if *checkpoint == "" {
			return fmt.Errorf("%w — but no -checkpoint was set, so the folded progress was discarded", dist.ErrDrained)
		}
		fmt.Fprintf(os.Stderr, "baexp coord: drained; rerun with -checkpoint %s to resume\n", *checkpoint)
		return tel.finish()
	}
	if runErr != nil {
		return runErr
	}
	if *corpusPath != "" && report.Corpus != nil {
		if err := report.Corpus.Save(*corpusPath); err != nil {
			return err
		}
		if s := tel.rec.Sink(); s != nil {
			s.Emit("corpus-save", "path", *corpusPath, "size", report.Corpus.Size())
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		var inner any
		switch {
		case report.Hunt != nil:
			inner = report.Hunt
		case report.Fuzz != nil:
			inner = report.Fuzz
		default:
			inner = report.Grid
		}
		if err := enc.Encode(inner); err != nil {
			return err
		}
		return tel.finish()
	}

	resumed := ""
	if report.Resumed {
		resumed = ", resumed from checkpoint"
	}
	fmt.Printf("coord %s: %d units over %d workers (%d reassigned)%s\n",
		report.Kind, report.Units, report.Workers, report.Reassigned, resumed)
	fmt.Printf("  [%.1f ms wall]\n", float64(report.Wall)/float64(time.Millisecond))
	if len(report.Quarantined) > 0 {
		fmt.Printf("  QUARANTINED units %v: retry budget exhausted, results below exclude them\n", report.Quarantined)
	}
	switch {
	case report.Hunt != nil:
		r := report.Hunt
		fmt.Printf("hunt %s vs %s: n=%d t=%d seeds [%d,%d)\n",
			r.Strategy, r.Protocol, r.N, r.T, r.Seeds.From, r.Seeds.To)
		fmt.Printf("  %d probes, %d violating seeds; messages %d..%d, rounds %d..%d\n",
			r.Probes, r.ViolationCount,
			r.Messages.Min, r.Messages.Max, r.RoundsHist.Min, r.RoundsHist.Max)
		for _, v := range r.Violations {
			fmt.Printf("VERDICT: %v\n", v)
			if v.Shrunk != nil {
				fmt.Printf("  shrunk: %v\n", v.Shrunk)
			}
		}
		if !r.Broken() {
			fmt.Println("VERDICT: no violation — the protocol survived every probe")
		}
	case report.Fuzz != nil:
		r := report.Fuzz
		fmt.Printf("fuzz %s vs %s: n=%d t=%d budget %d\n",
			r.SeedStrategy, r.Protocol, r.N, r.T, r.Budget)
		fmt.Printf("  %d probes over %d generations; corpus %d (+%d novel), %d violating probes\n",
			r.Probes, r.Generations, r.CorpusSize, r.NewCoverage, r.ViolationCount)
		for _, v := range r.Violations {
			fmt.Printf("VERDICT: %v\n", v)
			if v.Shrunk != nil {
				fmt.Printf("  shrunk: %v\n", v.Shrunk)
			}
		}
		if !r.Broken() {
			fmt.Println("VERDICT: no violation — the protocol survived every probe")
		}
	case report.Grid != nil:
		renderGrid(report.Grid)
	}
	return tel.finish()
}

// jobFlags carries the parsed campaign-shape flags into job construction.
type jobFlags struct {
	proto, strategy, seeds, sizes string
	n, t, units, keep, bias       int
	budget, genSize, batch        int
	fuzzSeed                      int64
	shrink, full, stop            bool
}

// addJobFlags registers the campaign-shape flags shared by `coord` and
// `soak` on fs and returns a closure that collects the parsed values.
func addJobFlags(fs *flag.FlagSet) func() jobFlags {
	proto := fs.String("proto", "", "protocol ID (hunt/fuzz; empty = floodset), or comma-separated IDs (matrix; empty = all)")
	strategy := fs.String("strategy", "", "strategy ID (hunt/fuzz; default per kind), or comma-separated IDs (matrix; empty = full library)")
	n := fs.Int("n", 8, "system size (hunt/fuzz)")
	t := fs.Int("t", 2, "fault budget (hunt/fuzz)")
	seeds := fs.String("seeds", "0:64", "half-open seed range FROM:TO (hunt; per-cell for matrix)")
	units := fs.Int("units", 0, "hunt work units to cut the seed range into (0 = default 16)")
	shrink := fs.Bool("shrink", true, "minimize found violations (merged report, coordinator-side)")
	full := fs.Bool("full", false, "record full traces and validate every probe")
	keep := fs.Int("keep", 3, "record at most this many violations (0 = all)")
	bias := fs.Int("bias", 40, "omission percentage for the random strategies")
	budget := fs.Int("budget", 2048, "total candidate probes (fuzz)")
	genSize := fs.Int("gen", 0, "candidates per mutation generation (fuzz; 0 = default 64)")
	fuzzSeed := fs.Int64("seed", 0, "master seed for the deterministic search (fuzz)")
	batch := fs.Int("batch", 0, "probes per fuzz work unit (0 = default 16)")
	stop := fs.Bool("stop", false, "stop after the first generation that found a violation (fuzz)")
	sizes := fs.String("sizes", "", "comma-separated N:T grid points (matrix; empty = "+defaultSizes+")")
	return func() jobFlags {
		return jobFlags{
			proto: *proto, strategy: *strategy, n: *n, t: *t,
			seeds: *seeds, units: *units, shrink: *shrink, full: *full,
			keep: *keep, bias: *bias, budget: *budget, genSize: *genSize,
			fuzzSeed: *fuzzSeed, batch: *batch, stop: *stop, sizes: *sizes,
		}
	}
}

// buildJob translates CLI flags into the wire-format job for one kind.
// Registry IDs travel as strings; workers resolve them against their own
// catalog, so coordinator and workers must run the same binary version.
func buildJob(kind string, f jobFlags) (*dist.Job, error) {
	if f.bias < 0 || f.bias > 100 {
		return nil, fmt.Errorf("bias must be a percentage within 0..100, got %d", f.bias)
	}
	switch kind {
	case "hunt":
		proto := f.proto
		if proto == "" {
			proto = "floodset"
		}
		strategy := f.strategy
		if strategy == "" {
			strategy = "targeted-withhold"
		}
		seeds, err := parseSeedRange(f.seeds)
		if err != nil {
			return nil, err
		}
		return &dist.Job{Kind: "hunt", Hunt: &dist.HuntJob{
			Protocol: proto, Strategy: strategy, Bias: f.bias,
			N: f.n, T: f.t, Seeds: seeds, Units: f.units,
			Shrink: f.shrink, MaxViolations: f.keep, RecordFull: f.full,
		}}, nil
	case "fuzz":
		proto := f.proto
		if proto == "" {
			proto = "floodset"
		}
		strategy := f.strategy
		if strategy == "" {
			strategy = "random-send-omission"
		}
		return &dist.Job{Kind: "fuzz", Fuzz: &dist.FuzzJob{
			Protocol: proto, SeedStrategy: strategy, Bias: f.bias,
			N: f.n, T: f.t, Budget: f.budget, GenSize: f.genSize,
			FuzzSeed: f.fuzzSeed, Batch: f.batch,
			Shrink: f.shrink, MaxViolations: f.keep, StopOnViolation: f.stop,
		}}, nil
	case "matrix":
		var protos []string
		if f.proto != "" {
			for _, id := range strings.Split(f.proto, ",") {
				protos = append(protos, strings.TrimSpace(id))
			}
		} else {
			for _, s := range catalog.Protocols() {
				protos = append(protos, s.ID)
			}
		}
		var strategies []string
		if f.strategy != "" {
			for _, id := range strings.Split(f.strategy, ",") {
				strategies = append(strategies, strings.TrimSpace(id))
			}
		} else {
			strategies = adversary.LibraryIDs()
		}
		sizesStr := f.sizes
		if sizesStr == "" {
			sizesStr = defaultSizes
		}
		sizes, err := parseSizes(sizesStr)
		if err != nil {
			return nil, err
		}
		seeds, err := parseSeedRange(f.seeds)
		if err != nil {
			return nil, err
		}
		return &dist.Job{Kind: "matrix", Matrix: &dist.MatrixJob{
			Protocols: protos, Strategies: strategies, Sizes: sizes,
			Bias: f.bias, Seeds: seeds,
			MaxViolations: f.keep, Shrink: f.shrink, RecordFull: f.full,
		}}, nil
	default:
		return nil, fmt.Errorf("unknown campaign kind %q (hunt|fuzz|matrix)", kind)
	}
}

// forkWorkers launches n worker processes of this binary against addr.
func forkWorkers(n int, addr string, parallel int) ([]*exec.Cmd, error) {
	if n <= 0 {
		return nil, nil
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("fork workers: %w", err)
	}
	procs := make([]*exec.Cmd, 0, n)
	for i := 0; i < n; i++ {
		cmd := exec.Command(exe, "worker",
			"-coord", addr,
			"-parallel", strconv.Itoa(parallel),
			"-name", fmt.Sprintf("proc-%d", i))
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			for _, p := range procs {
				_ = p.Process.Kill()
			}
			return nil, fmt.Errorf("fork worker %d: %w", i, err)
		}
		procs = append(procs, cmd)
	}
	return procs, nil
}

func runWorker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ContinueOnError)
	coord := fs.String("coord", "", "coordinator address to connect to (required)")
	parallel := fs.Int("parallel", 0, "probe worker count (0 = NumCPU, 1 = serial)")
	name := fs.String("name", "", "worker name in coordinator telemetry (default worker-<pid>)")
	attempts := fs.Int("retries", 10, "dial attempts before giving up")
	backoff := fs.Duration("backoff", 100*time.Millisecond, "initial dial retry backoff (doubles, capped)")
	reconnect := fs.Int("reconnect", 0, "times a lost coordinator link is re-dialed and the session resumed (0 = exit on first loss)")
	chaosProfile := fs.String("chaos", "", "chaosnet profile ID injected on the coordinator link ("+strings.Join(chaosnet.IDs(), "|")+"; empty = clean wire)")
	chaosSeed := fs.Int64("chaos-seed", 1, "seed for the -chaos plan (same seed = same faults)")
	chaosNode := fs.Int("chaos-node", 1, "this worker's process ID in the chaos plan's link space (coordinator is 63)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coord == "" {
		return fmt.Errorf("worker needs -coord ADDRESS")
	}
	w := &dist.Worker{
		Addr:         *coord,
		Name:         *name,
		Parallelism:  *parallel,
		DialAttempts: *attempts,
		DialBackoff:  *backoff,
		Reconnect:    *reconnect,
		ChaosNode:    *chaosNode,
	}
	if *chaosProfile != "" {
		p, ok := chaosnet.ByID(*chaosProfile)
		if !ok {
			return fmt.Errorf("unknown chaos profile %q (have %s)", *chaosProfile, strings.Join(chaosnet.IDs(), ", "))
		}
		w.Chaos = p.Build(*chaosSeed, chaosnet.Env{})
	}
	return w.Run()
}
