package main

import (
	"strings"
	"testing"
)

func TestRunSubcommands(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"usage", nil},
		{"help", []string{"help"}},
		{"experiment E7", []string{"exp", "E7"}},
		{"experiment lowercase", []string{"exp", "e4"}},
		{"experiment json", []string{"exp", "-json", "E7"}},
		{"experiment serial", []string{"exp", "-parallel", "1", "E4"}},
		{"experiment parallel", []string{"exp", "-parallel", "4", "E9"}},
		{"experiment list", []string{"exp", "-list"}},
		{"hunt floodset", []string{"hunt", "-proto", "floodset", "-seeds", "0:16", "-parallel", "1"}},
		{"hunt json", []string{"hunt", "-proto", "floodset", "-seeds", "0:8", "-json"}},
		{"hunt verbose", []string{"hunt", "-proto", "floodset", "-seeds", "0:8", "-v"}},
		{"hunt parallel", []string{"hunt", "-proto", "floodset", "-seeds", "0:16", "-parallel", "4"}},
		{"hunt sound protocol", []string{"hunt", "-proto", "phase-king", "-n", "5", "-t", "1", "-strategy", "chaos", "-seeds", "0:10"}},
		{"hunt storm", []string{"hunt", "-proto", "weak-ic", "-n", "5", "-t", "1", "-strategy", "storm", "-seeds", "0:6"}},
		{"hunt no shrink", []string{"hunt", "-proto", "floodset", "-seeds", "0:8", "-shrink=false"}},
		{"hunt list", []string{"hunt", "-list"}},
		{"hunt gradecast", []string{"hunt", "-proto", "gradecast", "-strategy", "two-faced", "-n", "5", "-t", "1", "-seeds", "0:8"}},
		{"hunt derived", []string{"hunt", "-proto", "derived-weak", "-n", "4", "-t", "1", "-strategy", "chaos", "-seeds", "0:6"}},
		{"matrix small", []string{"matrix", "-proto", "floodset", "-sizes", "5:1", "-seeds", "0:4"}},
		{"matrix json", []string{"matrix", "-proto", "floodset,phase-king", "-strategy", "targeted-withhold,chaos", "-sizes", "4:1,5:1", "-seeds", "0:4", "-json"}},
		{"matrix parallel", []string{"matrix", "-proto", "floodset,gradecast", "-sizes", "5:1", "-seeds", "0:4", "-parallel", "4"}},
		{"matrix shrink", []string{"matrix", "-proto", "floodset", "-strategy", "targeted-withhold", "-sizes", "5:1", "-seeds", "0:8", "-shrink"}},
		{"matrix list", []string{"matrix", "-list"}},
		{"falsify parallel", []string{"falsify", "-proto", "star", "-n", "24", "-t", "8", "-parallel", "4"}},
		{"falsify leader", []string{"falsify", "-proto", "leader", "-n", "24", "-t", "8"}},
		{"falsify verbose", []string{"falsify", "-proto", "silent", "-n", "24", "-t", "8", "-v"}},
		{"solve strong frontier", []string{"solve", "-problem", "strong", "-n", "5", "-t", "2"}},
		{"solve unsolvable", []string{"solve", "-problem", "strong", "-n", "4", "-t", "2"}},
		{"solve unauth", []string{"solve", "-problem", "weak", "-n", "4", "-t", "1", "-auth=false"}},
		{"run mem", []string{"run", "-proto", "phase-king", "-n", "5", "-t", "1"}},
		{"run tcp", []string{"run", "-proto", "weak-eig", "-n", "4", "-t", "1", "-transport", "tcp"}},
		{"run decoded", []string{"run", "-proto", "ic", "-n", "4", "-t", "1"}},
		{"run explicit proposals", []string{"run", "-proto", "phase-king", "-n", "5", "-t", "1", "-propose", "0,0,0,0,0"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := run(tc.args); err != nil {
				t.Fatalf("run(%v): %v", tc.args, err)
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown subcommand", []string{"bogus"}, "unknown subcommand"},
		{"unknown experiment", []string{"exp", "E99"}, "unknown experiment"},
		{"unknown protocol", []string{"falsify", "-proto", "nope"}, "unknown protocol"},
		{"hunt unknown protocol", []string{"hunt", "-proto", "nope"}, "unknown protocol"},
		{"hunt unknown strategy", []string{"hunt", "-strategy", "nope"}, "unknown strategy"},
		{"hunt bad seed range", []string{"hunt", "-seeds", "junk"}, "seed range"},
		{"hunt empty seed range", []string{"hunt", "-seeds", "5:5"}, "empty"},
		{"hunt resilience", []string{"hunt", "-proto", "phase-king", "-n", "4", "-t", "1"}, "n > 4t"},
		{"matrix unknown protocol", []string{"matrix", "-proto", "nope"}, "unknown protocol"},
		{"matrix unknown strategy", []string{"matrix", "-strategy", "nope"}, "unknown strategy"},
		{"matrix bad sizes", []string{"matrix", "-sizes", "junk"}, "N:T"},
		{"matrix bad size values", []string{"matrix", "-sizes", "3:0"}, "1 <= t < n"},
		{"matrix empty seeds", []string{"matrix", "-seeds", "4:4"}, "empty"},
		{"unknown problem", []string{"solve", "-problem", "nope"}, "unknown problem"},
		{"phase-king resilience", []string{"run", "-proto", "phase-king", "-n", "4", "-t", "1"}, "n > 4t"},
		{"proposal count", []string{"run", "-proto", "phase-king", "-n", "5", "-t", "1", "-propose", "0,1"}, "proposals"},
		{"unknown transport", []string{"run", "-transport", "carrier-pigeon"}, "transport"},
		{"falsify t too small", []string{"falsify", "-proto", "leader", "-n", "10", "-t", "2"}, "t"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args)
			if err == nil {
				t.Fatalf("run(%v): expected error", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
