package main

import (
	"path/filepath"
	"strings"
	"testing"

	"expensive/internal/adversary"
)

func TestRunSubcommands(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"usage", nil},
		{"help", []string{"help"}},
		{"experiment E7", []string{"exp", "E7"}},
		{"experiment lowercase", []string{"exp", "e4"}},
		{"experiment json", []string{"exp", "-json", "E7"}},
		{"experiment serial", []string{"exp", "-parallel", "1", "E4"}},
		{"experiment parallel", []string{"exp", "-parallel", "4", "E9"}},
		{"experiment list", []string{"exp", "-list"}},
		{"hunt floodset", []string{"hunt", "-proto", "floodset", "-seeds", "0:16", "-parallel", "1"}},
		{"hunt json", []string{"hunt", "-proto", "floodset", "-seeds", "0:8", "-json"}},
		{"hunt verbose", []string{"hunt", "-proto", "floodset", "-seeds", "0:8", "-v"}},
		{"hunt parallel", []string{"hunt", "-proto", "floodset", "-seeds", "0:16", "-parallel", "4"}},
		{"hunt sound protocol", []string{"hunt", "-proto", "phase-king", "-n", "5", "-t", "1", "-strategy", "chaos", "-seeds", "0:10"}},
		{"hunt storm", []string{"hunt", "-proto", "weak-ic", "-n", "5", "-t", "1", "-strategy", "storm", "-seeds", "0:6"}},
		{"hunt no shrink", []string{"hunt", "-proto", "floodset", "-seeds", "0:8", "-shrink=false"}},
		{"hunt list", []string{"hunt", "-list"}},
		{"hunt gradecast", []string{"hunt", "-proto", "gradecast", "-strategy", "two-faced", "-n", "5", "-t", "1", "-seeds", "0:8"}},
		{"hunt derived", []string{"hunt", "-proto", "derived-weak", "-n", "4", "-t", "1", "-strategy", "chaos", "-seeds", "0:6"}},
		{"fuzz floodset", []string{"fuzz", "-n", "4", "-t", "3", "-budget", "192", "-shrink=false"}},
		{"fuzz json", []string{"fuzz", "-n", "4", "-t", "3", "-budget", "128", "-json", "-shrink=false"}},
		{"fuzz parallel", []string{"fuzz", "-n", "4", "-t", "3", "-budget", "128", "-parallel", "4", "-shrink=false"}},
		{"fuzz sound protocol", []string{"fuzz", "-proto", "phase-king", "-n", "5", "-t", "1", "-strategy", "chaos", "-budget", "96", "-shrink=false"}},
		{"fuzz list", []string{"fuzz", "-list"}},
		{"matrix small", []string{"matrix", "-proto", "floodset", "-sizes", "5:1", "-seeds", "0:4"}},
		{"matrix json", []string{"matrix", "-proto", "floodset,phase-king", "-strategy", "targeted-withhold,chaos", "-sizes", "4:1,5:1", "-seeds", "0:4", "-json"}},
		{"matrix parallel", []string{"matrix", "-proto", "floodset,gradecast", "-sizes", "5:1", "-seeds", "0:4", "-parallel", "4"}},
		{"matrix shrink", []string{"matrix", "-proto", "floodset", "-strategy", "targeted-withhold", "-sizes", "5:1", "-seeds", "0:8", "-shrink"}},
		{"matrix list", []string{"matrix", "-list"}},
		{"falsify parallel", []string{"falsify", "-proto", "star", "-n", "24", "-t", "8", "-parallel", "4"}},
		{"falsify progress", []string{"falsify", "-proto", "silent", "-n", "24", "-t", "8", "-progress"}},
		{"experiment progress", []string{"exp", "-parallel", "1", "-progress", "E7"}},
		{"hunt pprof", []string{"hunt", "-proto", "floodset", "-seeds", "0:8", "-pprof", "127.0.0.1:0"}},
		{"falsify leader", []string{"falsify", "-proto", "leader", "-n", "24", "-t", "8"}},
		{"falsify verbose", []string{"falsify", "-proto", "silent", "-n", "24", "-t", "8", "-v"}},
		{"solve strong frontier", []string{"solve", "-problem", "strong", "-n", "5", "-t", "2"}},
		{"solve unsolvable", []string{"solve", "-problem", "strong", "-n", "4", "-t", "2"}},
		{"solve unauth", []string{"solve", "-problem", "weak", "-n", "4", "-t", "1", "-auth=false"}},
		// The dist soak kinds fork worker processes of the real binary, so
		// they are exercised by the CI soak-smoke step; the smr kind runs
		// fully in-process and smokes here.
		{"soak smr clean", []string{"soak", "-kind", "smr", "-n", "5", "-t", "1", "-duration", "300ms"}},
		{"soak smr storm", []string{"soak", "-kind", "smr", "-n", "5", "-t", "1", "-chaos", "storm", "-chaos-seed", "33", "-duration", "300ms"}},
		{"run mem", []string{"run", "-proto", "phase-king", "-n", "5", "-t", "1"}},
		{"run tcp", []string{"run", "-proto", "weak-eig", "-n", "4", "-t", "1", "-transport", "tcp"}},
		{"run decoded", []string{"run", "-proto", "ic", "-n", "4", "-t", "1"}},
		{"run explicit proposals", []string{"run", "-proto", "phase-king", "-n", "5", "-t", "1", "-propose", "0,0,0,0,0"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := run(tc.args); err != nil {
				t.Fatalf("run(%v): %v", tc.args, err)
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown subcommand", []string{"bogus"}, "unknown subcommand"},
		{"unknown experiment", []string{"exp", "E99"}, "unknown experiment"},
		{"unknown protocol", []string{"falsify", "-proto", "nope"}, "unknown protocol"},
		{"hunt unknown protocol", []string{"hunt", "-proto", "nope"}, "unknown protocol"},
		{"hunt unknown strategy", []string{"hunt", "-strategy", "nope"}, "unknown strategy"},
		{"hunt bad seed range", []string{"hunt", "-seeds", "junk"}, "seed range"},
		{"hunt empty seed range", []string{"hunt", "-seeds", "5:5"}, "empty"},
		{"hunt overflowing seed range", []string{"hunt", "-seeds", "0:9223372036854775807"}, "exceeds"},
		{"fuzz unknown protocol", []string{"fuzz", "-proto", "nope"}, "unknown protocol"},
		{"fuzz unknown strategy", []string{"fuzz", "-strategy", "nope"}, "unknown strategy"},
		{"fuzz bad budget", []string{"fuzz", "-n", "4", "-t", "3", "-budget", "0"}, "budget"},
		{"fuzz bad bias", []string{"fuzz", "-bias", "120"}, "bias"},
		{"fuzz resilience", []string{"fuzz", "-proto", "phase-king", "-n", "4", "-t", "1"}, "n > 4t"},
		{"fuzz unreadable corpus", []string{"fuzz", "-n", "4", "-t", "3", "-budget", "32", "-corpus", "main.go"}, "corpus"},
		{"hunt resilience", []string{"hunt", "-proto", "phase-king", "-n", "4", "-t", "1"}, "n > 4t"},
		{"matrix unknown protocol", []string{"matrix", "-proto", "nope"}, "unknown protocol"},
		{"matrix unknown strategy", []string{"matrix", "-strategy", "nope"}, "unknown strategy"},
		{"matrix bad sizes", []string{"matrix", "-sizes", "junk"}, "N:T"},
		{"matrix bad size values", []string{"matrix", "-sizes", "3:0"}, "1 <= t < n"},
		{"matrix empty seeds", []string{"matrix", "-seeds", "4:4"}, "empty"},
		{"unknown problem", []string{"solve", "-problem", "nope"}, "unknown problem"},
		{"phase-king resilience", []string{"run", "-proto", "phase-king", "-n", "4", "-t", "1"}, "n > 4t"},
		{"proposal count", []string{"run", "-proto", "phase-king", "-n", "5", "-t", "1", "-propose", "0,1"}, "proposals"},
		{"unknown transport", []string{"run", "-transport", "carrier-pigeon"}, "transport"},
		{"falsify t too small", []string{"falsify", "-proto", "leader", "-n", "10", "-t", "2"}, "t"},
		{"soak unknown kind", []string{"soak", "-kind", "bogus"}, "unknown campaign kind"},
		{"soak unknown chaos", []string{"soak", "-chaos", "bogus"}, "unknown chaos profile"},
		{"soak bad churn", []string{"soak", "-churn", "junk"}, "churn"},
		{"soak smr resilience", []string{"soak", "-kind", "smr", "-n", "4", "-t", "1"}, "n > 4t"},
		{"soak no workers", []string{"soak", "-workers", "0"}, "worker"},
		{"worker unknown chaos", []string{"worker", "-coord", "127.0.0.1:1", "-chaos", "bogus"}, "unknown chaos profile"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args)
			if err == nil {
				t.Fatalf("run(%v): expected error", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestParseSeedRange covers the FROM:TO parser, including the overflow
// regression: ranges whose width used to wrap Count() negative must be
// rejected, not passed through to panic the worker pool.
func TestParseSeedRange(t *testing.T) {
	cases := []struct {
		in      string
		want    adversary.SeedRange
		wantErr string
	}{
		{in: "0:64", want: adversary.SeedRange{From: 0, To: 64}},
		{in: "-8:8", want: adversary.SeedRange{From: -8, To: 8}},
		{in: "junk", wantErr: "not FROM:TO"},
		{in: "5", wantErr: "not FROM:TO"},
		{in: "a:b", wantErr: "not FROM:TO"},
		{in: "1:2:3", wantErr: "not FROM:TO"},
		{in: "", wantErr: "not FROM:TO"},
		{in: "5:5", wantErr: "empty"},
		{in: "9:3", wantErr: "empty"},
		{in: "0:9223372036854775807", wantErr: "exceeds"},
		{in: "-9223372036854775808:9223372036854775807", wantErr: "exceeds"},
		{in: "99999999999999999999:0", wantErr: "not FROM:TO"}, // From overflows int64
	}
	for _, tc := range cases {
		t.Run(tc.in, func(t *testing.T) {
			got, err := parseSeedRange(tc.in)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("parseSeedRange(%q) = %+v, expected error", tc.in, got)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Errorf("error %q does not mention %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("parseSeedRange(%q) = %+v, want %+v", tc.in, got, tc.want)
			}
			if got.Count() <= 0 || got.Count() > adversary.MaxSeeds {
				t.Errorf("accepted range has out-of-bounds count %d", got.Count())
			}
		})
	}
}

// TestParseSizes covers the N:T grid-point list parser.
func TestParseSizes(t *testing.T) {
	got, err := parseSizes("4:1, 5:1,8:2")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].N != 4 || got[0].T != 1 || got[1].N != 5 || got[2].T != 2 {
		t.Errorf("parseSizes = %+v", got)
	}
	for _, in := range []string{"junk", "4", "4:x", "x:1", ""} {
		if _, err := parseSizes(in); err == nil {
			t.Errorf("parseSizes(%q): expected error", in)
		}
	}
}

// TestProblemByName covers the solve-subcommand problem table.
func TestProblemByName(t *testing.T) {
	for _, name := range []string{"weak", "strong", "broadcast", "correct-source", "interactive", "constant"} {
		p, err := problemByName(name, 5, 2)
		if err != nil {
			t.Fatalf("problemByName(%q): %v", name, err)
		}
		if p.Name == "" {
			t.Errorf("problemByName(%q) returned an unnamed problem", name)
		}
	}
	if _, err := problemByName("nope", 5, 2); err == nil {
		t.Error("problemByName(nope): expected error")
	}
}

// TestLookupStrategy resolves every library ID and rejects unknown ones
// with the available IDs in the message.
func TestLookupStrategy(t *testing.T) {
	for _, id := range adversary.LibraryIDs() {
		s, err := lookupStrategy(id, 40)
		if err != nil {
			t.Fatalf("lookupStrategy(%q): %v", id, err)
		}
		if s.Build == nil {
			t.Errorf("lookupStrategy(%q) returned a strategy without Build", id)
		}
	}
	_, err := lookupStrategy("nope", 40)
	if err == nil {
		t.Fatal("lookupStrategy(nope): expected error")
	}
	if !strings.Contains(err.Error(), "targeted-withhold") {
		t.Errorf("error %q does not list the available strategies", err)
	}
}

// TestFuzzCorpusFlagRoundTrip pins the -corpus path: a first run writes
// the corpus, a second run resumes from it.
func TestFuzzCorpusFlagRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.json")
	args := []string{"fuzz", "-n", "4", "-t", "3", "-budget", "96", "-shrink=false", "-corpus", path}
	if err := run(args); err != nil {
		t.Fatalf("first run: %v", err)
	}
	if err := run(args); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
}

// TestSeedRangeNoPanic replays the original crash shape end to end: a
// huge range must surface as an error from the hunt path, never as a
// panic out of runner.Map.
func TestSeedRangeNoPanic(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("huge seed range panicked: %v", r)
		}
	}()
	err := run([]string{"hunt", "-proto", "floodset", "-seeds", "-4611686018427387904:4611686018427387904"})
	if err == nil {
		t.Fatal("expected an error for a 2^63-wide seed range")
	}
}
