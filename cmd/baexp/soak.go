package main

// `baexp soak` is the chaos/churn acceptance harness: it runs one
// campaign twice — once serially in-process (the oracle), once sharded
// over worker processes whose coordinator links run under a chaosnet
// profile while a churn schedule SIGKILLs and respawns them — and
// demands the two reports be byte-identical. `-kind smr` instead soaks
// the replicated log: phase-king slots over a chaosnet-wrapped mesh with
// the online safety and liveness monitors armed. Exit status is the
// verdict; the last line is "SOAK PASS" or the failure.

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"expensive/internal/dist"
	"expensive/internal/dist/churn"
	"expensive/internal/obs"
	"expensive/internal/proc"
	"expensive/internal/protocols/phaseking"
	"expensive/internal/sim"
	"expensive/internal/smr"
	"expensive/internal/transport"
	"expensive/internal/transport/chaosnet"
	"expensive/internal/transport/memnet"
)

func runSoak(args []string) error {
	fs := flag.NewFlagSet("soak", flag.ContinueOnError)
	kind := fs.String("kind", "hunt", "what to soak: hunt|fuzz|matrix (dist campaign vs serial oracle) or smr (replicated log)")
	workers := fs.Int("workers", 2, "worker processes (dist kinds)")
	churnSpec := fs.String("churn", "", `kill schedule "AFTER:SLOT,..." (e.g. "400ms:0,900ms:1"); killed workers respawn`)
	chaosProfile := fs.String("chaos", "", "chaosnet profile on every worker link ("+strings.Join(chaosnet.IDs(), "|")+"; empty = clean wire)")
	chaosSeed := fs.Int64("chaos-seed", 1, "base chaos seed; worker slot i uses seed+i")
	duration := fs.Duration("duration", 30*time.Second, "deadline for dist kinds (overrun = FAIL); slot-commit horizon for smr")
	hb := fs.Duration("hb", 2*time.Second, "heartbeat timeout before a silent worker is declared dead")
	unitDeadline := fs.Duration("unit-deadline", 2*time.Second, "per-unit deadline before a straggler's unit is reassigned")
	retryBudget := fs.Int("retry-budget", -1, "reassignments per unit before quarantine (negative = unlimited: chaos losses must retry, not degrade)")
	reconnect := fs.Int("reconnect", 8, "worker reconnect attempts after a lost coordinator link")
	parallel := fs.Int("parallel", 2, "probe worker count inside each worker process")
	collect := addJobFlags(fs)
	tf := addTelemetryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *chaosProfile != "" {
		if _, ok := chaosnet.ByID(*chaosProfile); !ok {
			return fmt.Errorf("unknown chaos profile %q (have %s)", *chaosProfile, strings.Join(chaosnet.IDs(), ", "))
		}
	}
	tel, err := tf.open()
	if err != nil {
		return err
	}
	defer tel.finish() //nolint:errcheck // surfaced by the explicit call below

	jf := collect()
	if *kind == "smr" {
		if err := soakSMR(tel.ctx, jf.n, jf.t, *chaosProfile, *chaosSeed, *duration); err != nil {
			return err
		}
		return tel.finish()
	}

	job, err := buildJob(*kind, jf)
	if err != nil {
		return err
	}
	if *workers < 1 {
		return fmt.Errorf("soak needs at least one worker, got %d", *workers)
	}
	schedule, err := churn.Parse(*churnSpec)
	if err != nil {
		return err
	}

	// The oracle first: the whole point is comparing against it.
	serial, err := dist.Serial(tel.ctx, job)
	if err != nil {
		return fmt.Errorf("serial oracle: %w", err)
	}
	wantReport, wantCorpus := soakBytes(serial)

	c := &dist.Coordinator{
		Job:              job,
		HeartbeatTimeout: *hb,
		UnitDeadline:     *unitDeadline,
		RetryBudget:      *retryBudget,
		Ctx:              tel.ctx,
	}
	if err := c.Start(); err != nil {
		return err
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	h := &churn.Harness{
		Workers:  *workers,
		Schedule: schedule,
		Ctx:      tel.ctx,
		Spawn: func(slot, incarnation int) (*exec.Cmd, error) {
			wargs := []string{"worker",
				"-coord", c.ListenAddr(),
				"-name", fmt.Sprintf("soak-%d-%d", slot, incarnation),
				"-parallel", strconv.Itoa(*parallel),
				"-reconnect", strconv.Itoa(*reconnect),
			}
			if *chaosProfile != "" {
				wargs = append(wargs,
					"-chaos", *chaosProfile,
					"-chaos-seed", strconv.FormatInt(*chaosSeed+int64(slot), 10),
					"-chaos-node", strconv.Itoa(slot+1),
				)
			}
			cmd := exec.Command(exe, wargs...)
			cmd.Stderr = os.Stderr
			return cmd, nil
		},
	}
	if err := h.Start(); err != nil {
		return err
	}
	defer h.Stop()

	type outcome struct {
		rep *dist.Report
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		rep, err := c.Run()
		done <- outcome{rep, err}
	}()
	var out outcome
	select {
	case out = <-done:
	case <-time.After(*duration):
		c.Drain() // unblock Run so its goroutine exits before we fail
		<-done
		return fmt.Errorf("SOAK FAIL: %s campaign did not complete within %v (workers=%d churn=%q chaos=%q)",
			*kind, *duration, *workers, *churnSpec, *chaosProfile)
	}
	h.Stop()
	if out.err != nil {
		return fmt.Errorf("SOAK FAIL: coordinator: %w", out.err)
	}
	rep := out.rep

	fmt.Printf("soak %s: %d units over %d workers; %d kills, %d restarts, %d reassigned [%.1f ms wall]\n",
		rep.Kind, rep.Units, rep.Workers, h.Kills(), h.Restarts(), rep.Reassigned,
		float64(rep.Wall)/float64(time.Millisecond))
	if len(rep.Quarantined) > 0 {
		return fmt.Errorf("SOAK FAIL: units %v quarantined — chaos losses must be retried, not abandoned", rep.Quarantined)
	}
	gotReport, gotCorpus := soakBytes(rep)
	if !bytes.Equal(gotReport, wantReport) {
		return fmt.Errorf("SOAK FAIL: distributed %s report diverged from the serial oracle\ngot:  %s\nwant: %s",
			rep.Kind, gotReport, wantReport)
	}
	if !bytes.Equal(gotCorpus, wantCorpus) {
		return fmt.Errorf("SOAK FAIL: distributed fuzz corpus diverged from the serial oracle")
	}
	fmt.Println("SOAK PASS: report byte-identical to the serial oracle under churn + chaos")
	return tel.finish()
}

// soakBytes canonicalizes a report for the oracle comparison: the inner
// campaign report bytes plus (fuzz only) the corpus bytes.
func soakBytes(rep *dist.Report) (report, corpus []byte) {
	switch {
	case rep.Hunt != nil:
		report, _ = json.Marshal(rep.Hunt)
	case rep.Fuzz != nil:
		report, _ = json.Marshal(rep.Fuzz)
		corpus, _ = json.Marshal(rep.Corpus)
	case rep.Grid != nil:
		report, _ = json.Marshal(rep.Grid)
	}
	return report, corpus
}

// soakSMR soaks the replicated log: phase-king slots over a fresh
// chaosnet-wrapped memnet mesh per slot, committing until the horizon.
// The online safety monitor (trusted replicas never diverge) and the
// liveness monitor (commit counter + latency histogram) are the verdict:
// any divergence, or a slot that cannot commit, fails the soak.
func soakSMR(ctx context.Context, n, t int, profile string, seed int64, horizon time.Duration) error {
	if n <= 4*t {
		return fmt.Errorf("smr soak runs phase-king: need n > 4t, got n=%d t=%d (try -n 5 -t 1)", n, t)
	}
	var plans func(slot int) *chaosnet.Plan
	if profile != "" {
		p, _ := chaosnet.ByID(profile) // validated by the caller
		plans = func(slot int) *chaosnet.Plan {
			return p.Build(seed+int64(slot), chaosnet.Env{N: n, T: t})
		}
	}
	cfg := smr.LiveConfig{
		N:    n,
		T:    t,
		NoOp: "0",
		Protocol: func(slot int) (sim.Factory, int) {
			return phaseking.New(phaseking.Config{N: n, T: t}), phaseking.RoundBound(t)
		},
		Mesh: func(slot int) ([]transport.Endpoint, func() error, error) {
			mesh := memnet.New(n, nil)
			eps := mesh.Endpoints()
			if plans != nil {
				eps = chaosnet.Wrap(eps, plans(slot), obs.From(ctx))
			}
			return eps, eps[0].Close, nil
		},
		Ctx: ctx,
	}
	if plans != nil {
		cfg.Faulty = func(slot int) proc.Set { return plans(slot).Budget() }
	}
	log, err := smr.NewLive(cfg)
	if err != nil {
		return err
	}
	deadline := time.Now().Add(horizon)
	for slot := 0; time.Now().Before(deadline); slot++ {
		// Unanimous binary proposals per slot: agreement must hold them
		// through whatever the chaos profile does within its budget.
		cmd := smr.Command(strconv.Itoa(slot % 2))
		for r := 0; r < n; r++ {
			if err := log.Submit(proc.ID(r), cmd); err != nil {
				return err
			}
		}
		if _, err := log.CommitSlot(); err != nil {
			return fmt.Errorf("SOAK FAIL: smr slot %d did not commit: %w", slot, err)
		}
	}
	entries := log.Entries()
	p50, p99 := log.LatencyP50P99()
	fmt.Printf("soak smr: %d slots committed (n=%d t=%d chaos=%q); commit latency p50=%s p99=%s\n",
		len(entries), n, t, profile, time.Duration(p50), time.Duration(p99))
	if d := log.Divergences(); len(d) != 0 {
		return fmt.Errorf("SOAK FAIL: safety monitor recorded %d divergence(s): %+v", len(d), d)
	}
	if len(entries) == 0 {
		return fmt.Errorf("SOAK FAIL: liveness: no slot committed within %v", horizon)
	}
	fmt.Println("SOAK PASS: every slot committed, safety monitor silent")
	return nil
}
