// Command baexp is the experiment and exploration CLI of the library.
//
//	baexp exp [-json] [-parallel N] [-list] E1 [E2 ...]
//	                        run paper experiments (default: all) on the
//	                        parallel engine
//	baexp falsify ...       run the Theorem 2 falsifier on one protocol
//	baexp solve ...         evaluate Theorem 4 for a standard problem
//	baexp run ...           run a protocol live over memnet or TCP
//
// Run `baexp <subcommand> -h` for flags.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"expensive/internal/crypto/sig"
	"expensive/internal/experiments"
	"expensive/internal/experiments/runner"
	"expensive/internal/lowerbound"
	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/protocols/phaseking"
	"expensive/internal/protocols/weak"
	"expensive/internal/sim"
	"expensive/internal/solve"
	"expensive/internal/transport"
	"expensive/internal/transport/memnet"
	"expensive/internal/transport/tcpnet"
	"expensive/internal/validity"
	"expensive/internal/viz"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "baexp:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return nil
	}
	switch args[0] {
	case "exp", "experiments":
		return runExperiments(args[1:])
	case "falsify":
		return runFalsify(args[1:])
	case "solve":
		return runSolve(args[1:])
	case "run":
		return runLive(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage() {
	fmt.Println(`baexp — "All Byzantine Agreement Problems are Expensive" (PODC 2024), executable

subcommands:
  exp [-json] [-parallel N] [-list] [IDs...]
                 run paper experiments E1..E12 (default: all) on the parallel engine
  falsify        run the Theorem 2 falsifier against a weak consensus protocol
  solve          evaluate the Theorem 4 solvability verdict for a problem
  run            run a protocol live over an in-memory or TCP mesh`)
}

func runExperiments(args []string) error {
	fs := flag.NewFlagSet("exp", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit structured JSON results (table + wall-clock + probe counts)")
	parallel := fs.Int("parallel", 0, "worker count per experiment (0 = NumCPU, 1 = serial)")
	list := fs.Bool("list", false, "list the registered experiments and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, info := range runner.List() {
			fmt.Printf("  %-4s %s (%s)\n", info.ID, info.Title, info.Params)
		}
		return nil
	}
	ids := fs.Args()
	for i := range ids {
		ids[i] = strings.ToUpper(ids[i])
	}
	opts := runner.Options{Parallelism: *parallel}
	results, err := runner.RunMany(ids, opts)
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(results)
	}
	for _, res := range results {
		fmt.Println(res.Table.Render())
		fmt.Printf("  [%s: %d probes, %.1f ms wall, %d workers]\n\n",
			res.Table.ID, res.Probes, res.WallMS, res.Workers)
	}
	return nil
}

func runFalsify(args []string) error {
	fs := flag.NewFlagSet("falsify", flag.ContinueOnError)
	protoName := fs.String("proto", "leader", "protocol: silent|leader|star|gossip-k3|phase-king|weak-via-ic")
	n := fs.Int("n", 40, "system size")
	t := fs.Int("t", 16, "fault budget (>= 8)")
	verbose := fs.Bool("v", false, "print the construction narrative")
	parallel := fs.Int("parallel", 0, "probe worker count (0 = NumCPU, 1 = serial)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var candidate *lowerbound.Candidate
	for _, c := range experiments.Candidates() {
		if c.Name == *protoName {
			cc := c
			candidate = &cc
			break
		}
	}
	if candidate == nil {
		return fmt.Errorf("unknown protocol %q", *protoName)
	}
	factory, err := candidate.New(*n, *t)
	if err != nil {
		return err
	}
	rounds := candidate.Rounds(*n, *t)
	rep, err := lowerbound.Falsify(candidate.Name, factory, rounds, *n, *t, lowerbound.Options{Parallelism: *parallel})
	if err != nil {
		return err
	}
	fmt.Printf("protocol %s (%s), n=%d t=%d, threshold t²/32 = %d\n",
		candidate.Name, candidate.Complexity, *n, *t, rep.Threshold)
	fmt.Printf("probe executions: %d, max messages by correct processes: %d\n",
		rep.Executions, rep.MaxCorrectMessages)
	if *verbose {
		for _, l := range rep.Log {
			fmt.Println("  " + l)
		}
	}
	if rep.Broken() {
		fmt.Println("VERDICT:", rep.Violation)
		if err := lowerbound.CheckViolation(rep.Violation, factory, rounds); err != nil {
			return fmt.Errorf("certificate failed independent recheck: %w", err)
		}
		fmt.Println("certificate independently re-validated: execution guarantees, fault budget, machine conformance all hold")
		if *verbose {
			part, perr := proc.NewPartition(*n, *t)
			groups := map[string]proc.Set{}
			if perr == nil {
				groups = map[string]proc.Set{"A": part.A, "B": part.B, "C": part.C}
			}
			fmt.Println("\ncounterexample execution timeline:")
			fmt.Print(viz.Timeline(rep.Violation.Exec, viz.Options{MaxRounds: 12, Groups: groups}))
		}
	} else {
		fmt.Println("VERDICT: no violation — the protocol paid the quadratic price (Theorem 2 satisfied)")
	}
	return nil
}

func problemByName(name string, n, t int) (validity.Problem, error) {
	switch name {
	case "weak":
		return validity.Weak(n, t), nil
	case "strong":
		return validity.Strong(n, t), nil
	case "broadcast":
		return validity.Broadcast(n, t, 0), nil
	case "correct-source":
		return validity.CorrectSource(n, t), nil
	case "interactive":
		return validity.Interactive(n, t), nil
	case "constant":
		return validity.Constant(n, t, msg.One), nil
	default:
		return validity.Problem{}, fmt.Errorf("unknown problem %q", name)
	}
}

func runSolve(args []string) error {
	fs := flag.NewFlagSet("solve", flag.ContinueOnError)
	name := fs.String("problem", "strong", "weak|strong|broadcast|correct-source|interactive|constant")
	n := fs.Int("n", 5, "system size (<= 8 for exact checking)")
	t := fs.Int("t", 2, "fault budget")
	auth := fs.Bool("auth", true, "authenticated setting")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := problemByName(*name, *n, *t)
	if err != nil {
		return err
	}
	verdict := p.Solve()
	fmt.Printf("problem %s, n=%d t=%d\n", p.Name, *n, *t)
	fmt.Printf("  trivial: %v\n  containment condition: %v\n  authenticated-solvable: %v\n  unauthenticated-solvable: %v\n",
		verdict.Trivial, verdict.CC, verdict.Authenticated, verdict.Unauthenticated)
	if verdict.CCWitness != nil {
		fmt.Printf("  CC witness: %v\n", verdict.CCWitness)
	}
	var d *solve.Derived
	if *auth {
		d, err = solve.Authenticated(p, sig.NewIdeal("baexp"))
	} else {
		d, err = solve.Unauthenticated(p)
	}
	if err != nil {
		fmt.Printf("  derivation: refused (%v)\n", err)
		return nil
	}
	fmt.Printf("  derivation: %s, decides in %d rounds\n", d.Mode, d.Rounds)
	checked := 0
	for _, c := range p.FullConfigs() {
		if err := solve.Check(p, d, c, nil); err != nil {
			return fmt.Errorf("derived protocol failed on %v: %w", c, err)
		}
		checked++
	}
	fmt.Printf("  checked on %d fully-correct input configurations: all decisions admissible\n", checked)
	return nil
}

func runLive(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	protoName := fs.String("proto", "phase-king", "protocol: phase-king|weak-ic|weak-eig")
	n := fs.Int("n", 5, "system size")
	t := fs.Int("t", 1, "fault budget")
	over := fs.String("transport", "mem", "mem|tcp")
	propose := fs.String("propose", "", "comma-separated 0/1 proposals (default: alternating)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var factory sim.Factory
	var rounds int
	switch *protoName {
	case "phase-king":
		if err := (phaseking.Config{N: *n, T: *t}).Validate(); err != nil {
			return err
		}
		factory, rounds = weak.ViaPhaseKing(*n, *t)
	case "weak-ic":
		factory, rounds = weak.ViaIC(*n, *t, sig.NewIdeal("baexp-live"))
	case "weak-eig":
		factory, rounds = weak.ViaEIG(*n, *t)
	default:
		return fmt.Errorf("unknown protocol %q", *protoName)
	}

	proposals := make([]msg.Value, *n)
	if *propose == "" {
		for i := range proposals {
			proposals[i] = msg.Bit(i % 2)
		}
	} else {
		parts := strings.Split(*propose, ",")
		if len(parts) != *n {
			return fmt.Errorf("need %d proposals, got %d", *n, len(parts))
		}
		for i, p := range parts {
			proposals[i] = msg.Value(strings.TrimSpace(p))
		}
	}

	var eps []transport.Endpoint
	switch *over {
	case "mem":
		eps = memnet.New(*n, nil).Endpoints()
	case "tcp":
		mesh, err := tcpnet.New(*n)
		if err != nil {
			return err
		}
		defer mesh.Close()
		eps = mesh.Endpoints()
	default:
		return fmt.Errorf("unknown transport %q", *over)
	}

	cluster := transport.Cluster{N: *n, Endpoints: eps, Factory: factory, Proposals: proposals, Rounds: rounds}
	results, err := cluster.Run()
	if err != nil {
		return err
	}
	total := 0
	for _, r := range results {
		fmt.Printf("  %s proposed %s decided %s (sent %d protocol messages)\n",
			r.ID, proposals[r.ID], r.Decision, r.Sent)
		total += r.Sent
	}
	d, err := transport.CommonDecision(results, proc.Universe(*n))
	if err != nil {
		return fmt.Errorf("agreement check: %w", err)
	}
	fmt.Printf("decision: %s over %s in %d rounds, %d messages total (t²/32 floor = %d)\n",
		d, *over, rounds, total, (*t)*(*t)/32)
	return nil
}
