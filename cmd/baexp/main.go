// Command baexp is the experiment and exploration CLI of the library.
//
//	baexp exp [-json] [-parallel N] [-list] E1 [E2 ...]
//	                        run paper experiments (default: all) on the
//	                        parallel engine
//	baexp falsify ...       run the Theorem 2 falsifier on one protocol
//	baexp hunt ...          run a seeded adversary campaign and shrink
//	                        whatever it finds to a minimal counterexample
//	baexp fuzz ...          run a coverage-guided adaptive hunt that mutates
//	                        fault plans from a replayable corpus
//	baexp matrix ...        sweep the full protocol × strategy × (n, t)
//	                        cross-product from the registry
//	baexp solve ...         evaluate Theorem 4 for a standard problem
//	baexp run ...           run a protocol live over memnet or TCP
//	baexp coord ...         coordinate a hunt/fuzz/matrix campaign sharded
//	                        across worker processes (deterministic merge)
//	baexp worker ...        connect to a coordinator and probe work units
//	baexp soak ...          run a campaign under worker churn and wire chaos
//	                        and demand byte-identity with the serial oracle
//	baexp lint ...          run the balint analyzer suite over the module
//
// Every protocol offering is derived from the catalog registry
// (internal/catalog) — there is no hand-maintained protocol table here.
// Run `baexp <subcommand> -h` for flags.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"expensive/internal/adversary"
	"expensive/internal/adversary/fuzz"
	"expensive/internal/analysis"
	"expensive/internal/analysis/balint"
	"expensive/internal/catalog"
	_ "expensive/internal/catalog/all" // link every protocol registration
	cmatrix "expensive/internal/catalog/matrix"
	"expensive/internal/crypto/sig"
	"expensive/internal/experiments"
	"expensive/internal/experiments/runner"
	"expensive/internal/lowerbound"
	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/sim"
	"expensive/internal/solve"
	"expensive/internal/transport"
	"expensive/internal/transport/memnet"
	"expensive/internal/transport/tcpnet"
	"expensive/internal/validity"
	"expensive/internal/viz"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "baexp:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage(os.Stderr)
		return nil
	}
	switch args[0] {
	case "exp", "experiments":
		return runExperiments(args[1:])
	case "falsify":
		return runFalsify(args[1:])
	case "hunt":
		return runHunt(args[1:])
	case "fuzz":
		return runFuzz(args[1:])
	case "matrix":
		return runMatrix(args[1:])
	case "solve":
		return runSolve(args[1:])
	case "run":
		return runLive(args[1:])
	case "coord":
		return runCoord(args[1:])
	case "worker":
		return runWorker(args[1:])
	case "soak":
		return runSoak(args[1:])
	case "lint":
		return runLint(args[1:])
	case "help", "-h", "--help":
		usage(os.Stdout)
		return nil
	default:
		// Usage on error is diagnostics, not output: it goes to stderr so
		// piped stdout (e.g. `baexp hunt -json | jq`) never sees it.
		usage(os.Stderr)
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `baexp — "All Byzantine Agreement Problems are Expensive" (PODC 2024), executable

subcommands:
  exp [-json] [-parallel N] [-list] [IDs...]
                 run paper experiments E1..E12 (default: all) on the parallel engine
  falsify        run the Theorem 2 falsifier against a weak consensus protocol
  hunt           run a seeded adversary campaign against a cataloged protocol
                 and shrink whatever it finds to a minimal counterexample
  fuzz           run a coverage-guided adaptive hunt: mutate fault plans from
                 a replayable corpus instead of sweeping fresh seeds
  matrix         sweep the full protocol × strategy × (n, t) cross-product
                 from the registry into a deterministic grid report
  solve          evaluate the Theorem 4 solvability verdict for a problem
  run            run a cataloged protocol live over an in-memory or TCP mesh
  coord          coordinate a distributed hunt/fuzz/matrix campaign: shard
                 work units over TCP workers, merge deterministically,
                 checkpoint/resume; -workers N forks local workers
  worker         connect to a coordinator and execute its work units; -chaos
                 injects a deterministic fault profile on the coordinator
                 link, -reconnect resumes sessions across link loss
  soak           run a hunt/fuzz/matrix campaign under a -churn kill schedule
                 and -chaos wire faults, then demand byte-identity with the
                 serial oracle; -kind smr soaks the replicated log with
                 online safety/liveness monitors instead
  lint [-list] [-v] [-json] [-dir D]
                 run the balint analyzer suite (determinism, lean-tier,
                 registry, telemetry side-channel, sentinel and goroutine
                 shutdown contracts) over the module; -json emits the
                 findings array on stdout

telemetry (exp, falsify, hunt, fuzz, matrix):
  -progress      live progress lines + final summary block on stderr
  -metrics-out F trace events + metrics snapshot as JSONL
  -pprof ADDR    net/http/pprof, expvar and /metrics HTTP server
                 reports on stdout stay byte-identical either way`)
}

// printListing is the shared registry printer behind `exp -list`,
// `hunt -list` and `matrix -list`: aligned (id, title, note) rows.
func printListing(rows [][3]string) {
	w := 0
	for _, r := range rows {
		if len(r[0]) > w {
			w = len(r[0])
		}
	}
	for _, r := range rows {
		if r[2] == "" {
			fmt.Printf("  %-*s  %s\n", w, r[0], r[1])
			continue
		}
		fmt.Printf("  %-*s  %s (%s)\n", w, r[0], r[1], r[2])
	}
}

// printCatalog lists the protocol registry (ID, title, model, resilience
// condition) and the strategy library — the common body of `hunt -list`
// and `matrix -list`.
func printCatalog(bias int) {
	var rows [][3]string
	for _, s := range catalog.Protocols() {
		rows = append(rows, [3]string{s.ID, s.Title, fmt.Sprintf("%s, %s", s.Model, s.Condition)})
	}
	fmt.Println("protocols:")
	printListing(rows)
	rows = rows[:0]
	for _, e := range adversary.Library(bias) {
		rows = append(rows, [3]string{e.ID, e.Strategy.Name, ""})
	}
	fmt.Println("strategies:")
	printListing(rows)
}

// runLint is the `baexp lint` frontend over internal/analysis/balint —
// the same suite cmd/balint and the CI lint job run. `-list` shares the
// registry listing convention of `exp -list` and `hunt -list`.
func runLint(args []string) error {
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	list := fs.Bool("list", false, "list the suite's analyzers and exit")
	verbose := fs.Bool("v", false, "also print suppressed findings with their reasons")
	jsonOut := fs.Bool("json", false, "write the findings (suppressed included) as a JSON array on stdout")
	dir := fs.String("dir", ".", "module root to lint")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		var rows [][3]string
		for _, a := range balint.Suite() {
			rows = append(rows, [3]string{a.Name, a.Summary(), ""})
		}
		fmt.Println("analyzers:")
		printListing(rows)
		return nil
	}
	diags, err := balint.LintModule(*dir)
	if err != nil {
		return err
	}
	failing := analysis.Unsuppressed(diags)
	if *jsonOut {
		if err := balint.EncodeJSON(os.Stdout, diags); err != nil {
			return err
		}
	} else {
		for _, d := range failing {
			fmt.Printf("%s:%d:%d: %s: %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if *verbose {
		// Same stream contract as the telemetry flags: under -json the
		// findings document owns stdout, chatter goes to stderr.
		out := os.Stdout
		if *jsonOut {
			out = os.Stderr
		}
		for _, d := range diags {
			if d.Suppressed {
				fmt.Fprintf(out, "%s:%d:%d: %s: suppressed (%s)\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Reason)
			}
		}
	}
	if len(failing) > 0 {
		return fmt.Errorf("%d unsuppressed finding(s)", len(failing))
	}
	return nil
}

func runExperiments(args []string) error {
	fs := flag.NewFlagSet("exp", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit structured JSON results (table + wall-clock + probe counts)")
	parallel := fs.Int("parallel", 0, "worker count per experiment (0 = NumCPU, 1 = serial)")
	list := fs.Bool("list", false, "list the registered experiments and exit")
	tf := addTelemetryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		var rows [][3]string
		for _, info := range runner.List() {
			rows = append(rows, [3]string{info.ID, info.Title, info.Params})
		}
		printListing(rows)
		return nil
	}
	ids := fs.Args()
	for i := range ids {
		ids[i] = strings.ToUpper(ids[i])
	}
	tel, err := tf.open()
	if err != nil {
		return err
	}
	defer tel.finish() //nolint:errcheck // surfaced by the explicit call below
	// Experiments have no single probe counter, but every one drives the
	// simulator: its global run count is the liveness signal.
	base := sim.Runs()
	tel.watch("exp", 0, func() int64 { return sim.Runs() - base })
	opts := runner.Options{Parallelism: *parallel, Ctx: tel.ctx}
	results, err := runner.RunMany(ids, opts)
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			return err
		}
		return tel.finish()
	}
	for _, res := range results {
		fmt.Println(res.Table.Render())
		fmt.Printf("  [%s: %d probes, %.1f ms wall, %d workers]\n\n",
			res.Table.ID, res.Probes, res.WallMS, res.Workers)
	}
	return tel.finish()
}

func runFalsify(args []string) error {
	fs := flag.NewFlagSet("falsify", flag.ContinueOnError)
	protoName := fs.String("proto", "leader", "protocol: silent|leader|star|gossip-k3|phase-king|weak-via-ic")
	n := fs.Int("n", 40, "system size")
	t := fs.Int("t", 16, "fault budget (>= 8)")
	verbose := fs.Bool("v", false, "print the construction narrative")
	parallel := fs.Int("parallel", 0, "probe worker count (0 = NumCPU, 1 = serial)")
	tf := addTelemetryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var candidate *lowerbound.Candidate
	for _, c := range experiments.Candidates() {
		if c.Name == *protoName {
			cc := c
			candidate = &cc
			break
		}
	}
	if candidate == nil {
		return fmt.Errorf("unknown protocol %q", *protoName)
	}
	factory, err := candidate.New(*n, *t)
	if err != nil {
		return err
	}
	rounds := candidate.Rounds(*n, *t)
	tel, err := tf.open()
	if err != nil {
		return err
	}
	defer tel.finish() //nolint:errcheck // surfaced by the explicit call below
	// The falsifier's execution count is unbounded up front, so the
	// progress line carries rate only, no percentage.
	tel.watchCounter("falsify", 0, "falsify_executions")
	rep, err := lowerbound.Falsify(candidate.Name, factory, rounds, *n, *t,
		lowerbound.Options{Parallelism: *parallel, Ctx: tel.ctx})
	if err != nil {
		return err
	}
	fmt.Printf("protocol %s (%s), n=%d t=%d, threshold t²/32 = %d\n",
		candidate.Name, candidate.Complexity, *n, *t, rep.Threshold)
	fmt.Printf("probe executions: %d, max messages by correct processes: %d\n",
		rep.Executions, rep.MaxCorrectMessages)
	if *verbose {
		for _, l := range rep.Log {
			fmt.Println("  " + l)
		}
	}
	if rep.Broken() {
		fmt.Println("VERDICT:", rep.Violation)
		if err := lowerbound.CheckViolation(rep.Violation, factory, rounds); err != nil {
			return fmt.Errorf("certificate failed independent recheck: %w", err)
		}
		fmt.Println("certificate independently re-validated: execution guarantees, fault budget, machine conformance all hold")
		if *verbose {
			part, perr := proc.NewPartition(*n, *t)
			groups := map[string]proc.Set{}
			if perr == nil {
				groups = map[string]proc.Set{"A": part.A, "B": part.B, "C": part.C}
			}
			fmt.Println("\ncounterexample execution timeline:")
			fmt.Print(viz.Timeline(rep.Violation.Exec, viz.Options{MaxRounds: 12, Groups: groups}))
		}
	} else {
		fmt.Println("VERDICT: no violation — the protocol paid the quadratic price (Theorem 2 satisfied)")
	}
	return tel.finish()
}

func parseSeedRange(s string) (adversary.SeedRange, error) {
	var r adversary.SeedRange
	from, to, ok := strings.Cut(s, ":")
	if ok {
		var errFrom, errTo error
		r.From, errFrom = strconv.ParseInt(from, 10, 64)
		r.To, errTo = strconv.ParseInt(to, 10, 64)
		ok = errFrom == nil && errTo == nil
	}
	if !ok {
		return r, fmt.Errorf("seed range %q is not FROM:TO", s)
	}
	// Err also rejects widths that used to wrap Count negative and panic
	// the worker pool (e.g. 0:9223372036854775807).
	if err := r.Err(); err != nil {
		return r, err
	}
	return r, nil
}

// lookupStrategy resolves a library strategy or fails with the available
// IDs.
func lookupStrategy(name string, bias int) (adversary.Strategy, error) {
	s, ok := adversary.FromLibrary(name, bias)
	if !ok {
		return s, fmt.Errorf("unknown strategy %q (have %v)", name, adversary.LibraryIDs())
	}
	return s, nil
}

func runHunt(args []string) error {
	fs := flag.NewFlagSet("hunt", flag.ContinueOnError)
	protoName := fs.String("proto", "floodset", "cataloged protocol to hunt")
	strategyName := fs.String("strategy", "targeted-withhold", "attack strategy")
	n := fs.Int("n", 8, "system size")
	t := fs.Int("t", 2, "fault budget")
	seedsFlag := fs.String("seeds", "0:64", "half-open seed range FROM:TO")
	parallel := fs.Int("parallel", 0, "probe worker count (0 = NumCPU, 1 = serial)")
	jsonOut := fs.Bool("json", false, "emit the deterministic JSON report")
	shrink := fs.Bool("shrink", true, "minimize found violations")
	full := fs.Bool("full", false, "record full traces and validate every probe (default: lean probes, full replay of violating seeds only; reports are byte-identical either way)")
	keep := fs.Int("keep", 3, "record at most this many violations (0 = all)")
	bias := fs.Int("bias", 40, "omission percentage for the random strategies")
	verbose := fs.Bool("v", false, "render the first shrunk counterexample's timeline")
	list := fs.Bool("list", false, "list protocols and strategies and exit")
	tf := addTelemetryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *bias < 0 || *bias > 100 {
		return fmt.Errorf("bias must be a percentage within 0..100, got %d", *bias)
	}
	if *list {
		printCatalog(*bias)
		return nil
	}
	spec, err := catalog.Get(*protoName)
	if err != nil {
		return err
	}
	strategy, err := lookupStrategy(*strategyName, *bias)
	if err != nil {
		return err
	}
	seeds, err := parseSeedRange(*seedsFlag)
	if err != nil {
		return err
	}
	params := catalog.DefaultParams(*n, *t)
	campaign, err := cmatrix.CampaignFor(spec, params, strategy, seeds)
	if err != nil {
		return err
	}
	campaign.Shrink = *shrink
	campaign.RecordFull = *full
	campaign.MaxViolations = *keep
	campaign.Parallelism = *parallel
	tel, err := tf.open()
	if err != nil {
		return err
	}
	defer tel.finish() //nolint:errcheck // surfaced by the explicit call below
	campaign.Ctx = tel.ctx
	tel.watchCounter("hunt", int64(seeds.Count()), "campaign_probes")
	report, err := campaign.Run()
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
		return tel.finish()
	}

	fmt.Printf("hunt %s vs %s: n=%d t=%d seeds [%d,%d)\n",
		report.Strategy, report.Protocol, report.N, report.T, report.Seeds.From, report.Seeds.To)
	fmt.Printf("  %d probes, %d violating seeds; messages %d..%d, rounds %d..%d\n",
		report.Probes, report.ViolationCount,
		report.Messages.Min, report.Messages.Max, report.RoundsHist.Min, report.RoundsHist.Max)
	fmt.Printf("  [%.1f ms wall, %.0f probes/sec, %d workers]\n", report.WallMS, report.ProbesPerSec, report.Workers)
	if !report.Broken() {
		fmt.Println("VERDICT: no violation — the protocol survived every probe")
		return tel.finish()
	}
	opts := campaign.RecheckOptions()
	for _, v := range report.Violations {
		fmt.Printf("VERDICT: %v\n", v)
		if v.Plan != nil {
			fmt.Printf("  found plan: %v\n", v.Plan)
		}
		if v.Shrunk != nil {
			fmt.Printf("  shrunk: %v\n", v.Shrunk)
		}
		if err := adversary.Recheck(v, opts); err != nil {
			return fmt.Errorf("certificate failed independent recheck: %w", err)
		}
		fmt.Println("  certificate independently re-validated: execution guarantees, fault budget, machine conformance all hold")
	}
	if *verbose {
		if v := report.Violations[0]; v.Shrunk != nil {
			rebuild := spec.Rebuilder(params)
			factory2, rounds2, err := rebuild(v.Shrunk.N, *t)
			if err == nil {
				env := adversary.Env{N: v.Shrunk.N, T: *t, Rounds: rounds2, Horizon: rounds2 + 2, Factory: factory2}
				cfg := sim.Config{N: v.Shrunk.N, T: *t, Proposals: v.Shrunk.Proposals, MaxRounds: rounds2 + 2}
				if e, rerr := sim.Run(cfg, factory2, v.Shrunk.Plan.Plan(env)); rerr == nil {
					fmt.Println("\nminimal counterexample timeline:")
					fmt.Print(viz.Timeline(e, viz.Options{MaxRounds: 12}))
				}
			}
		}
	}
	return tel.finish()
}

func runFuzz(args []string) error {
	fs := flag.NewFlagSet("fuzz", flag.ContinueOnError)
	protoName := fs.String("proto", "floodset", "cataloged protocol to fuzz")
	strategyName := fs.String("strategy", "random-send-omission", "seed strategy for generation 0")
	n := fs.Int("n", 4, "system size")
	t := fs.Int("t", 3, "fault budget")
	budget := fs.Int("budget", 2048, "total candidate probes")
	genSize := fs.Int("gen", 0, "candidates per mutation generation (0 = default 64)")
	fuzzSeed := fs.Int64("seed", 0, "master seed for the deterministic search")
	corpusPath := fs.String("corpus", "", "corpus file: loaded if present, saved after the run")
	parallel := fs.Int("parallel", 0, "probe worker count (0 = NumCPU, 1 = serial)")
	jsonOut := fs.Bool("json", false, "emit the deterministic JSON report")
	shrink := fs.Bool("shrink", true, "minimize found violations")
	stop := fs.Bool("stop", false, "stop after the first generation that found a violation")
	keep := fs.Int("keep", 3, "record at most this many violations (0 = all)")
	bias := fs.Int("bias", 40, "omission percentage for the random seed strategies")
	list := fs.Bool("list", false, "list protocols and strategies and exit")
	tf := addTelemetryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *bias < 0 || *bias > 100 {
		return fmt.Errorf("bias must be a percentage within 0..100, got %d", *bias)
	}
	if *list {
		printCatalog(*bias)
		return nil
	}
	spec, err := catalog.Get(*protoName)
	if err != nil {
		return err
	}
	strategy, err := lookupStrategy(*strategyName, *bias)
	if err != nil {
		return err
	}
	params := catalog.DefaultParams(*n, *t)
	fuzzer, err := cmatrix.FuzzerFor(spec, params, strategy, *budget)
	if err != nil {
		return err
	}
	fuzzer.GenSize = *genSize
	fuzzer.FuzzSeed = *fuzzSeed
	fuzzer.Shrink = *shrink
	fuzzer.StopOnViolation = *stop
	fuzzer.MaxViolations = *keep
	fuzzer.Parallelism = *parallel
	if *corpusPath != "" {
		// Only a genuinely absent file means "start fresh": any other
		// load failure must abort, or the final Save would overwrite an
		// existing corpus the run silently failed to resume from.
		corpus, err := fuzz.LoadCorpus(*corpusPath)
		switch {
		case errors.Is(err, os.ErrNotExist):
		case err != nil:
			return fmt.Errorf("-corpus: %w", err)
		default:
			fuzzer.Corpus = corpus
		}
	}
	tel, err := tf.open()
	if err != nil {
		return err
	}
	defer tel.finish() //nolint:errcheck // surfaced by the explicit call below
	fuzzer.Ctx = tel.ctx
	tel.watchCounter("fuzz", int64(*budget), "fuzz_probes")
	report, err := fuzzer.Run()
	if err != nil {
		return err
	}
	if *corpusPath != "" {
		if err := fuzzer.Corpus.Save(*corpusPath); err != nil {
			return err
		}
		if s := tel.rec.Sink(); s != nil {
			s.Emit("corpus-save", "path", *corpusPath, "size", fuzzer.Corpus.Size())
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
		return tel.finish()
	}

	fmt.Printf("fuzz %s vs %s: n=%d t=%d budget %d\n",
		report.SeedStrategy, report.Protocol, report.N, report.T, report.Budget)
	fmt.Printf("  %d probes over %d generations; corpus %d (+%d novel), %d violating probes\n",
		report.Probes, report.Generations, report.CorpusSize, report.NewCoverage, report.ViolationCount)
	fmt.Printf("  messages %d..%d, rounds %d..%d\n",
		report.Messages.Min, report.Messages.Max, report.RoundsHist.Min, report.RoundsHist.Max)
	fmt.Printf("  [%.1f ms wall, %.0f probes/sec, %d workers]\n", report.WallMS, report.ProbesPerSec, report.Workers)
	if !report.Broken() {
		fmt.Println("VERDICT: no violation — the protocol survived every probe")
		return tel.finish()
	}
	fmt.Printf("VERDICT: first violation at probe %d of %d\n", report.FirstViolationProbe, report.Probes)
	opts := fuzzer.ShrinkOptions()
	for _, v := range report.Violations {
		fmt.Printf("VERDICT: %v\n", v)
		if v.Plan != nil {
			fmt.Printf("  found plan: %v\n", v.Plan)
		}
		if v.Shrunk != nil {
			fmt.Printf("  shrunk: %v\n", v.Shrunk)
		}
		if err := adversary.Recheck(v, opts); err != nil {
			return fmt.Errorf("certificate failed independent recheck: %w", err)
		}
		fmt.Println("  certificate independently re-validated: execution guarantees, fault budget, machine conformance all hold")
	}
	return tel.finish()
}

// parseSizes parses a comma-separated list of N:T grid points.
func parseSizes(s string) ([]cmatrix.Size, error) {
	var out []cmatrix.Size
	for _, part := range strings.Split(s, ",") {
		ns, ts, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("size %q is not N:T", part)
		}
		n, errN := strconv.Atoi(ns)
		t, errT := strconv.Atoi(ts)
		if errN != nil || errT != nil {
			return nil, fmt.Errorf("size %q is not N:T", part)
		}
		out = append(out, cmatrix.Size{N: n, T: t})
	}
	return out, nil
}

func runMatrix(args []string) error {
	fs := flag.NewFlagSet("matrix", flag.ContinueOnError)
	protoFlag := fs.String("proto", "", "comma-separated protocol IDs (default: every registered protocol)")
	strategyFlag := fs.String("strategy", "", "comma-separated strategy IDs (default: the full library)")
	sizesFlag := fs.String("sizes", "", "comma-separated N:T grid points (default: 4:1,5:1,8:2)")
	seedsFlag := fs.String("seeds", "0:16", "half-open per-cell seed range FROM:TO")
	parallel := fs.Int("parallel", 0, "cell worker count (0 = NumCPU, 1 = serial)")
	jsonOut := fs.Bool("json", false, "emit the deterministic JSON grid report")
	shrink := fs.Bool("shrink", false, "minimize recorded violations")
	full := fs.Bool("full", false, "record full traces and validate every probe in every cell (default: lean probes, full replay of violating seeds only)")
	keep := fs.Int("keep", 1, "violations recorded per cell")
	bias := fs.Int("bias", cmatrix.DefaultBias, "omission percentage for the random strategies")
	timing := fs.Bool("timing", false, "attach the wall-clock timing block (probes_per_sec) to the grid JSON; nondeterministic, so off by default")
	list := fs.Bool("list", false, "list protocols and strategies and exit")
	tf := addTelemetryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *bias < 0 || *bias > 100 {
		return fmt.Errorf("bias must be a percentage within 0..100, got %d", *bias)
	}
	if *list {
		printCatalog(*bias)
		return nil
	}
	seeds, err := parseSeedRange(*seedsFlag)
	if err != nil {
		return err
	}
	m := &cmatrix.Matrix{
		Seeds:         seeds,
		Parallelism:   *parallel,
		Shrink:        *shrink,
		RecordFull:    *full,
		MaxViolations: *keep,
		Timing:        *timing,
	}
	if *protoFlag != "" {
		for _, id := range strings.Split(*protoFlag, ",") {
			spec, err := catalog.Get(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			m.Protocols = append(m.Protocols, spec)
		}
	}
	if *strategyFlag != "" {
		for _, id := range strings.Split(*strategyFlag, ",") {
			id = strings.TrimSpace(id)
			s, err := lookupStrategy(id, *bias)
			if err != nil {
				return err
			}
			m.Strategies = append(m.Strategies, adversary.Named{ID: id, Strategy: s})
		}
	} else {
		m.Strategies = adversary.Library(*bias)
	}
	if *sizesFlag != "" {
		if m.Sizes, err = parseSizes(*sizesFlag); err != nil {
			return err
		}
	}
	tel, err := tf.open()
	if err != nil {
		return err
	}
	defer tel.finish() //nolint:errcheck // surfaced by the explicit call below
	m.Ctx = tel.ctx
	// How many cells the resilience conditions will skip is unknown up
	// front, so the progress line reports the aggregate probe rate only.
	tel.watchCounter("matrix", 0, "campaign_probes")
	grid, err := m.Run()
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(grid); err != nil {
			return err
		}
		return tel.finish()
	}
	renderGrid(grid)
	return tel.finish()
}

// renderGrid draws the grid as one table per size: rows are protocols,
// columns are strategies, cells show the violating-seed count (· = clean,
// - = skipped by the resilience condition).
func renderGrid(g *cmatrix.Grid) {
	fmt.Printf("matrix: %d protocols × %d strategies × %d sizes, seeds [%d,%d): %d cells (%d skipped), %d probes, %d violating cells\n",
		len(g.Protocols), len(g.Strategies), len(g.Sizes), g.Seeds.From, g.Seeds.To,
		len(g.Cells), g.SkippedCells, g.Probes, g.ViolatingCells)
	fmt.Printf("  [%.1f ms wall, %.0f probes/sec, %d workers]\n", g.WallMS, g.ProbesPerSec, g.Workers)
	fmt.Println("\nstrategies:")
	for i, s := range g.Strategies {
		fmt.Printf("  [%c] %s\n", 'A'+i, s)
	}
	w := len("protocol")
	for _, p := range g.Protocols {
		if len(p) > w {
			w = len(p)
		}
	}
	cellAt := func(pi, si, zi int) *cmatrix.Cell {
		return &g.Cells[(pi*len(g.Strategies)+si)*len(g.Sizes)+zi]
	}
	for zi, size := range g.Sizes {
		fmt.Printf("\nn=%d t=%d (· clean, - skipped, k = violating seeds)\n", size.N, size.T)
		fmt.Printf("  %-*s", w, "protocol")
		for si := range g.Strategies {
			fmt.Printf(" %3c", 'A'+si)
		}
		fmt.Println()
		for pi, p := range g.Protocols {
			fmt.Printf("  %-*s", w, p)
			for si := range g.Strategies {
				c := cellAt(pi, si, zi)
				switch {
				case c.Skipped:
					fmt.Printf(" %3s", "-")
				case c.ViolationCount == 0:
					fmt.Printf(" %3s", "·")
				default:
					fmt.Printf(" %3d", c.ViolationCount)
				}
			}
			fmt.Println()
		}
	}
}

func problemByName(name string, n, t int) (validity.Problem, error) {
	switch name {
	case "weak":
		return validity.Weak(n, t), nil
	case "strong":
		return validity.Strong(n, t), nil
	case "broadcast":
		return validity.Broadcast(n, t, 0), nil
	case "correct-source":
		return validity.CorrectSource(n, t), nil
	case "interactive":
		return validity.Interactive(n, t), nil
	case "constant":
		return validity.Constant(n, t, msg.One), nil
	default:
		return validity.Problem{}, fmt.Errorf("unknown problem %q", name)
	}
}

func runSolve(args []string) error {
	fs := flag.NewFlagSet("solve", flag.ContinueOnError)
	name := fs.String("problem", "strong", "weak|strong|broadcast|correct-source|interactive|constant")
	n := fs.Int("n", 5, "system size (<= 8 for exact checking)")
	t := fs.Int("t", 2, "fault budget")
	auth := fs.Bool("auth", true, "authenticated setting")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := problemByName(*name, *n, *t)
	if err != nil {
		return err
	}
	verdict := p.Solve()
	fmt.Printf("problem %s, n=%d t=%d\n", p.Name, *n, *t)
	fmt.Printf("  trivial: %v\n  containment condition: %v\n  authenticated-solvable: %v\n  unauthenticated-solvable: %v\n",
		verdict.Trivial, verdict.CC, verdict.Authenticated, verdict.Unauthenticated)
	if verdict.CCWitness != nil {
		fmt.Printf("  CC witness: %v\n", verdict.CCWitness)
	}
	var d *solve.Derived
	if *auth {
		d, err = solve.Authenticated(p, sig.NewIdeal("baexp"))
	} else {
		d, err = solve.Unauthenticated(p)
	}
	if err != nil {
		fmt.Printf("  derivation: refused (%v)\n", err)
		return nil
	}
	fmt.Printf("  derivation: %s, decides in %d rounds\n", d.Mode, d.Rounds)
	checked := 0
	for _, c := range p.FullConfigs() {
		if err := solve.Check(p, d, c, nil); err != nil {
			return fmt.Errorf("derived protocol failed on %v: %w", c, err)
		}
		checked++
	}
	fmt.Printf("  checked on %d fully-correct input configurations: all decisions admissible\n", checked)
	return nil
}

func runLive(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	protoName := fs.String("proto", "phase-king", "cataloged protocol to run (see `baexp hunt -list`)")
	n := fs.Int("n", 5, "system size")
	t := fs.Int("t", 1, "fault budget")
	over := fs.String("transport", "mem", "mem|tcp")
	propose := fs.String("propose", "", "comma-separated 0/1 proposals (default: alternating)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	spec, err := catalog.Get(*protoName)
	if err != nil {
		return err
	}
	params := catalog.DefaultParams(*n, *t)
	factory, rounds, err := spec.Build(params)
	if err != nil {
		return err
	}

	proposals := make([]msg.Value, *n)
	if *propose == "" {
		for i := range proposals {
			proposals[i] = msg.Bit(i % 2)
		}
	} else {
		parts := strings.Split(*propose, ",")
		if len(parts) != *n {
			return fmt.Errorf("need %d proposals, got %d", *n, len(parts))
		}
		for i, p := range parts {
			proposals[i] = msg.Value(strings.TrimSpace(p))
		}
	}

	var eps []transport.Endpoint
	switch *over {
	case "mem":
		eps = memnet.New(*n, nil).Endpoints()
	case "tcp":
		mesh, err := tcpnet.New(*n)
		if err != nil {
			return err
		}
		defer mesh.Close()
		eps = mesh.Endpoints()
	default:
		return fmt.Errorf("unknown transport %q", *over)
	}

	cluster := transport.Cluster{N: *n, Endpoints: eps, Factory: factory, Proposals: proposals, Rounds: rounds}
	results, err := cluster.Run()
	if err != nil {
		return err
	}
	total := 0
	for _, r := range results {
		fmt.Printf("  %s proposed %s decided %s (sent %d protocol messages)\n",
			r.ID, proposals[r.ID], r.Decision, r.Sent)
		total += r.Sent
	}
	d, err := transport.CommonDecision(results, proc.Universe(*n))
	if err != nil {
		return fmt.Errorf("agreement check: %w", err)
	}
	fmt.Printf("decision: %s over %s in %d rounds, %d messages total (t²/32 floor = %d)\n",
		d, *over, rounds, total, (*t)*(*t)/32)
	if spec.Decode != nil {
		decoded, derr := spec.Decode(d)
		if derr != nil {
			return fmt.Errorf("decision %q does not decode: %w", d, derr)
		}
		fmt.Printf("decoded: %s\n", decoded)
	}
	return nil
}
