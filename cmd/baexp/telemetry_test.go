package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// captureRun executes run(args) with stdout and stderr redirected to
// pipes, so tests can assert which stream every byte landed on.
func captureRun(t *testing.T, args []string) (stdout, stderr []byte, err error) {
	t.Helper()
	oldOut, oldErr := os.Stdout, os.Stderr
	ro, wo, perr := os.Pipe()
	if perr != nil {
		t.Fatal(perr)
	}
	re, we, perr := os.Pipe()
	if perr != nil {
		t.Fatal(perr)
	}
	os.Stdout, os.Stderr = wo, we
	outCh := make(chan []byte)
	errCh := make(chan []byte)
	go func() { b, _ := io.ReadAll(ro); outCh <- b }()
	go func() { b, _ := io.ReadAll(re); errCh <- b }()
	err = run(args)
	wo.Close()
	we.Close()
	os.Stdout, os.Stderr = oldOut, oldErr
	return <-outCh, <-errCh, err
}

// TestTelemetryKeepsJSONStdoutClean is the CLI half of the flight-recorder
// contract: under `-json -progress -metrics-out -pprof` the report on
// stdout is byte-identical to a bare telemetry-off run (so piping into jq
// or cmp always works), every human-oriented line lands on stderr, and the
// metrics file is valid JSONL carrying both trace events and the snapshot.
func TestTelemetryKeepsJSONStdoutClean(t *testing.T) {
	metrics := filepath.Join(t.TempDir(), "metrics.jsonl")
	base := []string{"hunt", "-proto", "floodset", "-seeds", "0:32", "-json"}

	plain, plainErr, err := captureRun(t, append([]string{}, append(base, "-parallel", "1")...))
	if err != nil {
		t.Fatal(err)
	}
	if len(plainErr) != 0 {
		t.Errorf("telemetry-off run wrote to stderr: %q", plainErr)
	}

	loud, loudErr, err := captureRun(t, append([]string{}, append(base,
		"-parallel", "4", "-progress", "-metrics-out", metrics, "-pprof", "127.0.0.1:0")...))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, loud) {
		t.Error("telemetry flags changed the stdout report bytes")
	}
	var report map[string]any
	if uerr := json.Unmarshal(loud, &report); uerr != nil {
		t.Fatalf("stdout is not one clean JSON document: %v", uerr)
	}
	for _, want := range []string{"probes/s", "telemetry summary", "campaign_probes", "pprof: serving"} {
		if !bytes.Contains(loudErr, []byte(want)) {
			t.Errorf("stderr missing %q:\n%s", want, loudErr)
		}
	}

	f, err := os.Open(metrics)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	var all bytes.Buffer
	for sc.Scan() {
		lines++
		var doc map[string]any
		if uerr := json.Unmarshal(sc.Bytes(), &doc); uerr != nil {
			t.Fatalf("metrics line %d is not JSON: %v", lines, uerr)
		}
		all.Write(sc.Bytes())
		all.WriteByte('\n')
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	if lines == 0 {
		t.Fatal("-metrics-out file is empty")
	}
	for _, want := range []string{
		`"name":"campaign-start"`, `"name":"violation-found"`, `"name":"campaign-end"`,
		`"type":"counter","name":"campaign_probes","value":32`,
		`"type":"histogram","name":"campaign_probe_ns"`,
	} {
		if !bytes.Contains(all.Bytes(), []byte(want)) {
			t.Errorf("metrics dump missing %s", want)
		}
	}
}

// TestLintJSONStdoutClean extends the clean-stdout contract to `lint
// -json`: the findings array (suppressed findings included) is the only
// stdout content, and -v chatter lands on stderr.
func TestLintJSONStdoutClean(t *testing.T) {
	stdout, stderr, err := captureRun(t, []string{"lint", "-json", "-v", "-dir", "../.."})
	if err != nil {
		t.Fatal(err)
	}
	var findings []map[string]any
	if uerr := json.Unmarshal(stdout, &findings); uerr != nil {
		t.Fatalf("lint -json stdout is not one clean JSON document: %v\n%s", uerr, stdout)
	}
	if len(findings) == 0 {
		t.Error("findings array is empty; the module's suppressed findings should be recorded")
	}
	for _, f := range findings {
		if sup, _ := f["suppressed"].(bool); !sup {
			t.Errorf("unsuppressed finding in a clean tree: %v", f)
		}
	}
	if !bytes.Contains(stderr, []byte("suppressed (")) {
		t.Errorf("-v chatter missing from stderr:\n%s", stderr)
	}
}

// TestUsageOnErrorStaysOffStdout pins the stream split for diagnostics:
// an unknown subcommand prints usage on stderr only.
func TestUsageOnErrorStaysOffStdout(t *testing.T) {
	stdout, stderr, err := captureRun(t, []string{"bogus"})
	if err == nil {
		t.Fatal("expected an unknown-subcommand error")
	}
	if len(stdout) != 0 {
		t.Errorf("error-path usage leaked onto stdout: %q", stdout)
	}
	if !bytes.Contains(stderr, []byte("subcommands:")) {
		t.Errorf("stderr carries no usage text:\n%s", stderr)
	}
}

// TestFuzzCorpusSaveEvent pins the corpus-save trace event: a fuzz run
// with -corpus and -metrics-out records where the corpus went.
func TestFuzzCorpusSaveEvent(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.jsonl")
	corpus := filepath.Join(dir, "corpus.json")
	_, _, err := captureRun(t, []string{"fuzz", "-n", "4", "-t", "3", "-budget", "96",
		"-shrink=false", "-corpus", corpus, "-metrics-out", metrics})
	if err != nil {
		t.Fatal(err)
	}
	dump, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"name":"corpus-save"`, `"name":"fuzz-end"`} {
		if !bytes.Contains(dump, []byte(want)) {
			t.Errorf("fuzz metrics dump missing %s", want)
		}
	}
}

// TestMatrixTimingFlag pins the -timing opt-in: probes_per_sec appears in
// the grid JSON only when asked for, keeping the default grid diffable.
func TestMatrixTimingFlag(t *testing.T) {
	args := []string{"matrix", "-proto", "floodset", "-sizes", "5:1", "-seeds", "0:4", "-json"}
	plain, _, err := captureRun(t, args)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(plain, []byte(`"probes_per_sec"`)) {
		t.Error("default grid JSON carries the nondeterministic timing block")
	}
	timed, _, err := captureRun(t, append(args, "-timing"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(timed, []byte(`"probes_per_sec"`)) {
		t.Error("-timing grid JSON carries no probes_per_sec")
	}
}
