// Telemetry wiring shared by the long-running subcommands (exp, falsify,
// hunt, fuzz, matrix): the -progress / -metrics-out / -pprof flag trio
// resolves into one internal/obs flight-recorder session per run.
//
// Everything the session produces is human- or tooling-oriented chatter,
// so all of it lands on stderr or in side files — stdout stays reserved
// for the deterministic reports, which are byte-identical with telemetry
// on or off. With all three flags off no recorder exists at all and the
// engines stay on their nil fast path (one pointer check per instrument).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"expensive/internal/obs"
)

// telemetryFlags holds the observability flag trio a subcommand accepts.
type telemetryFlags struct {
	progress   bool
	metricsOut string
	pprofAddr  string
}

// addTelemetryFlags registers -progress, -metrics-out and -pprof on fs.
func addTelemetryFlags(fs *flag.FlagSet) *telemetryFlags {
	tf := &telemetryFlags{}
	fs.BoolVar(&tf.progress, "progress", false,
		"print live progress lines and a final telemetry summary to stderr")
	fs.StringVar(&tf.metricsOut, "metrics-out", "",
		"write trace events plus a final metrics snapshot as JSONL to this file")
	fs.StringVar(&tf.pprofAddr, "pprof", "",
		"serve net/http/pprof, expvar and /metrics on this address (e.g. localhost:6060)")
	return tf
}

func (tf *telemetryFlags) enabled() bool {
	return tf.progress || tf.metricsOut != "" || tf.pprofAddr != ""
}

// telemetry is one subcommand's live flight-recorder session.
type telemetry struct {
	flags *telemetryFlags
	rec   *obs.Recorder
	ctx   context.Context
	prog  *obs.Progress
	srv   *obs.DebugServer
	out   *os.File
	done  bool
}

// open resolves the flags into a running session: recorder, trace sink on
// the -metrics-out file, and -pprof server. With every flag off the
// returned session carries a plain context and a nil recorder.
func (tf *telemetryFlags) open() (*telemetry, error) {
	tel := &telemetry{flags: tf, ctx: context.Background()}
	if !tf.enabled() {
		return tel, nil
	}
	tel.rec = obs.New()
	tel.ctx = obs.Into(context.Background(), tel.rec)
	if tf.metricsOut != "" {
		f, err := os.Create(tf.metricsOut)
		if err != nil {
			return nil, fmt.Errorf("-metrics-out: %w", err)
		}
		tel.out = f
		tel.rec.SetSink(obs.NewSink(f))
	}
	if tf.pprofAddr != "" {
		srv, err := obs.ServeDebug(tf.pprofAddr, tel.rec)
		if err != nil {
			if tel.out != nil {
				tel.out.Close()
			}
			return nil, err
		}
		tel.srv = srv
		fmt.Fprintf(os.Stderr, "pprof: serving /debug/pprof, /debug/vars and /metrics on http://%s\n", srv.Addr)
	}
	return tel, nil
}

// watch starts the -progress printer over current; without -progress it
// is a no-op. total 0 means unknown (lines omit the percentage and ETA).
func (tel *telemetry) watch(task string, total int64, current func() int64) {
	if !tel.flags.progress {
		return
	}
	tel.prog = obs.StartProgress(obs.ProgressConfig{
		Task: task, Total: total, Current: current, W: os.Stderr,
	})
}

// watchCounter is watch over a named recorder counter — the common case.
func (tel *telemetry) watchCounter(task string, total int64, counter string) {
	if tel.rec == nil {
		return
	}
	tel.watch(task, total, tel.rec.Counter(counter).Value)
}

// finish stops the progress printer, appends the metrics snapshot to the
// -metrics-out file, prints the stderr summary block and shuts down the
// pprof server. Idempotent, so callers defer it for cleanup and may also
// call it explicitly.
func (tel *telemetry) finish() error {
	if tel.done {
		return nil
	}
	tel.done = true
	tel.prog.Stop()
	var err error
	if tel.out != nil {
		err = tel.rec.WriteMetrics(tel.out)
		if cerr := tel.out.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			err = fmt.Errorf("-metrics-out: %w", err)
		}
	}
	if tel.flags.progress {
		writeSummary(os.Stderr, tel.rec)
	}
	if cerr := tel.srv.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeSummary renders the final human-readable telemetry block: every
// counter and gauge value, and count/quantiles for every histogram.
func writeSummary(w io.Writer, r *obs.Recorder) {
	if r == nil {
		return
	}
	fmt.Fprintf(w, "telemetry summary (uptime %s):\n", r.Uptime().Round(time.Millisecond))
	for _, m := range r.Snapshot() {
		if m.Type == "histogram" {
			fmt.Fprintf(w, "  %-28s count=%d p50=%s p90=%s p99=%s\n",
				m.Name, m.Count, summaryValue(m.Name, m.P50), summaryValue(m.Name, m.P90), summaryValue(m.Name, m.P99))
			continue
		}
		fmt.Fprintf(w, "  %-28s %d\n", m.Name, m.Value)
	}
}

// summaryValue renders one histogram quantile: nanosecond histograms (the
// *_ns convention) print as rounded durations, anything else as a count.
func summaryValue(name string, v int64) string {
	if strings.HasSuffix(name, "_ns") {
		return time.Duration(v).Round(time.Microsecond).String()
	}
	return fmt.Sprintf("%d", v)
}
