package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"testing"

	"expensive/internal/analysis/balint"
)

// captureRun executes run(args) with stdout and stderr redirected to
// pipes, so tests can assert which stream every byte landed on.
func captureRun(t *testing.T, args []string) (stdout, stderr []byte, code int) {
	t.Helper()
	oldOut, oldErr := os.Stdout, os.Stderr
	ro, wo, perr := os.Pipe()
	if perr != nil {
		t.Fatal(perr)
	}
	re, we, perr := os.Pipe()
	if perr != nil {
		t.Fatal(perr)
	}
	os.Stdout, os.Stderr = wo, we
	outCh := make(chan []byte)
	errCh := make(chan []byte)
	go func() { b, _ := io.ReadAll(ro); outCh <- b }()
	go func() { b, _ := io.ReadAll(re); errCh <- b }()
	code = run(args)
	wo.Close()
	we.Close()
	os.Stdout, os.Stderr = oldOut, oldErr
	return <-outCh, <-errCh, code
}

// TestJSONStdoutPurity is the balint half of the clean-stdout contract:
// under -json the findings array is the only stdout content, -v chatter
// moves to stderr without changing a stdout byte, the document parses as
// one JSON array in deterministic order, and the known suppressed
// findings of the dataflow tier are recorded in it.
func TestJSONStdoutPurity(t *testing.T) {
	plain, plainErr, code := captureRun(t, []string{"-json", "../.."})
	if code != 0 {
		t.Fatalf("clean module lint exited %d, stderr:\n%s", code, plainErr)
	}
	if len(plainErr) != 0 {
		t.Errorf("bare -json run wrote to stderr: %q", plainErr)
	}

	loud, loudErr, code := captureRun(t, []string{"-json", "-v", "../.."})
	if code != 0 {
		t.Fatalf("verbose lint exited %d", code)
	}
	if !bytes.Equal(plain, loud) {
		t.Error("-v changed the stdout findings bytes")
	}
	if !bytes.Contains(loudErr, []byte("suppressed (")) {
		t.Errorf("-v chatter missing from stderr:\n%s", loudErr)
	}

	var findings []balint.Finding
	if err := json.Unmarshal(plain, &findings); err != nil {
		t.Fatalf("stdout is not one clean JSON document: %v", err)
	}
	if len(findings) == 0 {
		t.Fatal("findings array is empty; the module's suppressed findings should be recorded")
	}
	byAnalyzer := map[string]int{}
	for i, f := range findings {
		if !f.Suppressed {
			t.Errorf("unsuppressed finding leaked into a clean run: %+v", f)
		}
		if f.Suppressed && f.Reason == "" {
			t.Errorf("finding %d suppressed without a reason", i)
		}
		byAnalyzer[f.Analyzer]++
		if i > 0 {
			prev := findings[i-1]
			if f.File < prev.File || (f.File == prev.File && (f.Line < prev.Line || (f.Line == prev.Line && f.Col < prev.Col))) {
				t.Errorf("findings out of position order at %d: %+v after %+v", i, f, prev)
			}
		}
	}
	for _, name := range []string{"obstaint", "goleak"} {
		if byAnalyzer[name] == 0 {
			t.Errorf("findings artifact records no %s suppression; the known sanctioned site is missing", name)
		}
	}
}

// TestListStaysHumanReadable pins -list output: one line per analyzer,
// dataflow tier included.
func TestListStaysHumanReadable(t *testing.T) {
	stdout, _, code := captureRun(t, []string{"-list"})
	if code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, name := range []string{"maporder", "wallclock", "globalrand", "leantier", "regcheck", "obstaint", "errcmp", "goleak"} {
		if !bytes.Contains(stdout, []byte(name)) {
			t.Errorf("-list output missing %s:\n%s", name, stdout)
		}
	}
}
