// Command balint runs the repo's analyzer suite — the five checks that
// enforce the determinism, lean-tier and registry contracts — over the
// whole module and exits non-zero on any unsuppressed diagnostic.
//
// Usage:
//
//	balint [-list] [-v] [dir]
//
// dir is the module root (default "."). Unlike a `go vet -vettool`
// pass, balint loads the entire module into one type universe: the
// maporder and leantier contracts are whole-program reachability
// properties, which the per-package unitchecker protocol cannot see.
// scripts/lint.sh runs balint alongside plain `go vet`.
package main

import (
	"flag"
	"fmt"
	"os"

	"expensive/internal/analysis"
	"expensive/internal/analysis/balint"
)

func main() {
	list := flag.Bool("list", false, "print the registered analyzers and exit")
	verbose := flag.Bool("v", false, "also print suppressed diagnostics with their reasons")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: balint [-list] [-v] [dir]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range balint.Suite() {
			fmt.Printf("%-12s %s\n", a.Name, a.Summary())
		}
		return
	}

	dir := "."
	if flag.NArg() > 0 {
		dir = flag.Arg(0)
	}
	diags, err := balint.LintModule(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "balint:", err)
		os.Exit(2)
	}

	failing := analysis.Unsuppressed(diags)
	for _, d := range failing {
		fmt.Printf("%s:%d:%d: %s: %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if *verbose {
		for _, d := range diags {
			if d.Suppressed {
				fmt.Printf("%s:%d:%d: %s: suppressed (%s)\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Reason)
			}
		}
	}
	if len(failing) > 0 {
		fmt.Fprintf(os.Stderr, "balint: %d unsuppressed diagnostic(s)\n", len(failing))
		os.Exit(1)
	}
}
