// Command balint runs the repo's analyzer suite — the eight checks that
// enforce the determinism, lean-tier, registry, telemetry-side-channel,
// sentinel-classification and goroutine-shutdown contracts — over the
// whole module and exits non-zero on any unsuppressed diagnostic.
//
// Usage:
//
//	balint [-list] [-v] [-json] [dir]
//
// dir is the module root (default "."). Unlike a `go vet -vettool`
// pass, balint loads the entire module into one type universe: the
// maporder and leantier contracts are whole-program reachability
// properties, and the obstaint/goleak dataflow runs on the same shared
// callgraph — none of which the per-package unitchecker protocol can
// see. scripts/lint.sh runs balint alongside plain `go vet`.
//
// With -json, stdout carries exactly one JSON array of findings
// (suppressed ones included and marked, deterministically ordered) and
// nothing else; all human-oriented output moves to stderr, so the
// artifact pipes into jq or an upload step unfiltered. The exit code
// still reflects only unsuppressed findings.
package main

import (
	"flag"
	"fmt"
	"os"

	"expensive/internal/analysis"
	"expensive/internal/analysis/balint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is main with the process edges cut off: flags in, exit code out,
// streams via os.Stdout/os.Stderr so tests can capture them.
func run(args []string) int {
	fs := flag.NewFlagSet("balint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	list := fs.Bool("list", false, "print the registered analyzers and exit")
	verbose := fs.Bool("v", false, "also print suppressed diagnostics with their reasons")
	jsonOut := fs.Bool("json", false, "write the findings (suppressed included) as a JSON array on stdout")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: balint [-list] [-v] [-json] [dir]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range balint.Suite() {
			fmt.Printf("%-12s %s\n", a.Name, a.Summary())
		}
		return 0
	}

	dir := "."
	if fs.NArg() > 0 {
		dir = fs.Arg(0)
	}
	diags, err := balint.LintModule(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "balint:", err)
		return 2
	}

	failing := analysis.Unsuppressed(diags)
	if *jsonOut {
		if err := balint.EncodeJSON(os.Stdout, diags); err != nil {
			fmt.Fprintln(os.Stderr, "balint:", err)
			return 2
		}
	} else {
		for _, d := range failing {
			fmt.Printf("%s:%d:%d: %s: %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if *verbose {
		// Human chatter: stdout in text mode, stderr under -json so the
		// findings document stays the only stdout bytes.
		out := os.Stdout
		if *jsonOut {
			out = os.Stderr
		}
		for _, d := range diags {
			if d.Suppressed {
				fmt.Fprintf(out, "%s:%d:%d: %s: suppressed (%s)\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Reason)
			}
		}
	}
	if len(failing) > 0 {
		fmt.Fprintf(os.Stderr, "balint: %d unsuppressed diagnostic(s)\n", len(failing))
		return 1
	}
	return 0
}
