module expensive

go 1.21
