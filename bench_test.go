package expensive_test

import (
	"context"
	"fmt"
	"testing"

	"expensive"
	"expensive/internal/analysis"
	"expensive/internal/analysis/balint"
	"expensive/internal/crypto/sig"
	"expensive/internal/experiments"
	"expensive/internal/experiments/runner"
	"expensive/internal/lowerbound"
	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/protocols/cheap"
	"expensive/internal/protocols/dolevstrong"
	"expensive/internal/protocols/eig"
	"expensive/internal/protocols/ic"
	"expensive/internal/protocols/phaseking"
	"expensive/internal/sim"
	"expensive/internal/validity"
)

// Experiment benchmarks: one per paper artifact (see DESIGN.md §4 and
// EXPERIMENTS.md). Each regenerates the corresponding table.

func benchExperiment(b *testing.B, run func() (*experiments.Table, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("empty experiment table")
		}
	}
}

func benchFalsifier(b *testing.B, parallelism int) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := lowerbound.Falsify("leader", cheap.Leader(40), cheap.LeaderRounds, 40, 16,
			lowerbound.Options{Parallelism: parallelism})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Broken() {
			b.Fatal("leader not falsified")
		}
	}
}

func BenchmarkE1Falsifier(b *testing.B) {
	// The full sweep is heavy; the benchmark uses the cheap-protocol slice
	// at the recorded parameters. Serial vs parallel probe computation.
	b.Run("serial", func(b *testing.B) { benchFalsifier(b, 1) })
	b.Run("parallel", func(b *testing.B) { benchFalsifier(b, 0) })
}

func BenchmarkE2Isolation(b *testing.B) {
	benchExperiment(b, func() (*experiments.Table, error) { return experiments.E2(20, 8, 3) })
}

func BenchmarkE3Merge(b *testing.B) {
	benchExperiment(b, func() (*experiments.Table, error) { return experiments.E3(40, 16, serialOpts) })
}

// serialOpts and parallelOpts pin the two ends of the engine's worker
// range for the parallel-vs-serial comparison benchmarks.
var (
	serialOpts   = runner.Options{Parallelism: 1}
	parallelOpts = runner.Options{Parallelism: 0} // NumCPU
)

func BenchmarkE4Swap(b *testing.B) {
	benchExperiment(b, func() (*experiments.Table, error) { return experiments.E4(24, 8) })
}

func BenchmarkE5Reduction(b *testing.B) {
	benchExperiment(b, func() (*experiments.Table, error) { return experiments.E5(6, 1) })
}

func BenchmarkE6Solvability(b *testing.B) {
	b.Run("serial", func(b *testing.B) {
		benchExperiment(b, func() (*experiments.Table, error) { return experiments.E6([][2]int{{4, 1}}, serialOpts) })
	})
	b.Run("parallel", func(b *testing.B) {
		benchExperiment(b, func() (*experiments.Table, error) { return experiments.E6([][2]int{{4, 1}}, parallelOpts) })
	})
}

func BenchmarkE7StrongCC(b *testing.B) {
	benchExperiment(b, func() (*experiments.Table, error) { return experiments.E7(3) })
}

func BenchmarkE8External(b *testing.B) {
	b.Run("serial", func(b *testing.B) {
		benchExperiment(b, func() (*experiments.Table, error) { return experiments.E8(40, 16, serialOpts) })
	})
	b.Run("parallel", func(b *testing.B) {
		benchExperiment(b, func() (*experiments.Table, error) { return experiments.E8(40, 16, parallelOpts) })
	})
}

func BenchmarkE9Protocols(b *testing.B) {
	b.Run("serial", func(b *testing.B) {
		benchExperiment(b, func() (*experiments.Table, error) { return experiments.E9([]int{4, 8, 16}, serialOpts) })
	})
	b.Run("parallel", func(b *testing.B) {
		benchExperiment(b, func() (*experiments.Table, error) { return experiments.E9([]int{4, 8, 16}, parallelOpts) })
	})
}

func BenchmarkE10FailureModels(b *testing.B) {
	benchExperiment(b, func() (*experiments.Table, error) { return experiments.E10(8, 2) })
}

func BenchmarkE11Ablations(b *testing.B) {
	benchExperiment(b, func() (*experiments.Table, error) { return experiments.E11() })
}

func BenchmarkE12GoodCase(b *testing.B) {
	benchExperiment(b, func() (*experiments.Table, error) { return experiments.E12(10, 4) })
}

// Protocol scaling benchmarks: fault-free runs with message-complexity
// metrics, the series behind E9's table.

func uniformProposals(n int, v msg.Value) []msg.Value {
	out := make([]msg.Value, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func benchProtocol(b *testing.B, factory sim.Factory, n, t, rounds int) {
	benchProtocolAt(b, factory, n, t, rounds, sim.RecordFull)
}

func benchProtocolAt(b *testing.B, factory sim.Factory, n, t, rounds int, rec sim.Recording) {
	b.Helper()
	cfg := sim.Config{N: n, T: t, Proposals: uniformProposals(n, msg.Zero), MaxRounds: rounds + 2, Recording: rec}
	b.ReportAllocs()
	var msgs int
	for i := 0; i < b.N; i++ {
		e, err := sim.Run(cfg, factory, sim.NoFaults{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.CommonDecision(proc.Universe(n)); err != nil {
			b.Fatal(err)
		}
		msgs = e.CorrectMessages()
	}
	b.ReportMetric(float64(msgs), "msgs")
	b.ReportMetric(float64(msgs)/float64(n*n), "msgs/n²")
}

func BenchmarkDolevStrongBB(b *testing.B) {
	scheme := sig.NewIdeal("bench-ds")
	for _, n := range []int{8, 16, 32} {
		t := n / 2
		b.Run(fmt.Sprintf("n=%d_t=%d", n, t), func(b *testing.B) {
			f := dolevstrong.New(dolevstrong.Config{N: n, T: t, Sender: 0, Scheme: scheme, Tag: "bb", Default: "⊥"})
			benchProtocol(b, f, n, t, dolevstrong.RoundBound(t))
		})
	}
}

func BenchmarkInteractiveConsistency(b *testing.B) {
	scheme := sig.NewIdeal("bench-ic")
	for _, n := range []int{4, 8, 16} {
		t := (n - 1) / 3
		b.Run(fmt.Sprintf("n=%d_t=%d", n, t), func(b *testing.B) {
			f := ic.New(ic.Config{N: n, T: t, Scheme: scheme, Default: msg.One})
			benchProtocol(b, f, n, t, ic.RoundBound(t))
		})
	}
}

func BenchmarkEIG(b *testing.B) {
	for _, nt := range [][2]int{{4, 1}, {7, 2}} {
		n, t := nt[0], nt[1]
		b.Run(fmt.Sprintf("n=%d_t=%d", n, t), func(b *testing.B) {
			f := eig.New(eig.Config{N: n, T: t, Default: msg.One})
			benchProtocol(b, f, n, t, eig.RoundBound(t))
		})
	}
}

func BenchmarkPhaseKing(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		t := (n - 1) / 4
		b.Run(fmt.Sprintf("n=%d_t=%d", n, t), func(b *testing.B) {
			f := phaseking.New(phaseking.Config{N: n, T: t})
			benchProtocol(b, f, n, t, phaseking.RoundBound(t))
		})
	}
}

// Campaign throughput benchmarks: the adversary hunt engine's probes/sec
// at the two ends of the worker range. Each probe is a full cycle — plan
// derivation, simulation, execution-guarantee validation, conformance
// re-execution, property checks — so this is the number that tells you
// how much adversarial ground a seed budget covers.

func benchCampaign(b *testing.B, parallelism int, strategy expensive.AttackStrategy) {
	b.Helper()
	n, tf := 8, 2
	factory, rounds := expensive.NewFloodSet(n, tf)
	const seedsPerRun = 128
	b.ReportAllocs()
	var probes int
	for i := 0; i < b.N; i++ {
		c := expensive.NewCampaign("floodset", factory, rounds, n, tf, strategy,
			expensive.SeedRange{From: 0, To: seedsPerRun})
		c.Validity = expensive.CheckWeakValidity
		c.Parallelism = parallelism
		rep, err := c.Run()
		if err != nil {
			b.Fatal(err)
		}
		probes += rep.Probes
	}
	b.ReportMetric(float64(probes)/b.Elapsed().Seconds(), "probes/s")
}

func BenchmarkHuntCampaign(b *testing.B) {
	// Serial vs full-width worker pool (GOMAXPROCS), per strategy family.
	for _, bench := range []struct {
		name     string
		strategy expensive.AttackStrategy
	}{
		{"omission", expensive.StrategyRandomOmission(40)},
		{"targeted", expensive.StrategyTargetedWithhold()},
		{"byzantine", expensive.StrategyChaos()},
	} {
		b.Run(bench.name+"/serial", func(b *testing.B) { benchCampaign(b, 1, bench.strategy) })
		b.Run(bench.name+"/parallel", func(b *testing.B) { benchCampaign(b, 0, bench.strategy) })
	}
}

// Telemetry overhead benchmarks: the flight recorder's contract is that
// the disabled (nil-recorder) instrument sequence a probe loop executes —
// start a timer, bump a counter, stop the timer — costs a few nil checks
// and zero allocations, and the enabled path stays cheap enough to leave
// on under -progress/-metrics-out. BenchmarkObsDisabled is the number the
// "<1% probe-loop overhead when off" claim rests on; compare a probe at
// BenchmarkEngineRoundLean to see the ratio.

func benchObs(b *testing.B, rec *expensive.Telemetry) {
	b.Helper()
	probes := rec.Counter("probes")
	lat := rec.Histogram("probe_ns")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := lat.StartTimer()
		probes.Inc()
		t.Stop()
	}
}

func BenchmarkObsDisabled(b *testing.B) { benchObs(b, nil) }

func BenchmarkObsEnabled(b *testing.B) { benchObs(b, expensive.NewTelemetry()) }

// BenchmarkHuntCampaignTelemetry is BenchmarkHuntCampaign's targeted
// sweep with a live recorder attached: the end-to-end cost of running a
// campaign instrumented rather than dark.
func BenchmarkHuntCampaignTelemetry(b *testing.B) {
	n, tf := 8, 2
	factory, rounds := expensive.NewFloodSet(n, tf)
	rec := expensive.NewTelemetry()
	b.ReportAllocs()
	var probes int
	for i := 0; i < b.N; i++ {
		c := expensive.NewCampaign("floodset", factory, rounds, n, tf,
			expensive.StrategyTargetedWithhold(), expensive.SeedRange{From: 0, To: 128})
		c.Validity = expensive.CheckWeakValidity
		c.Ctx = expensive.WithTelemetry(context.Background(), rec)
		rep, err := c.Run()
		if err != nil {
			b.Fatal(err)
		}
		probes += rep.Probes
	}
	if rec.Counter("campaign_probes").Value() == 0 {
		b.Fatal("recorder saw no probes")
	}
	b.ReportMetric(float64(probes)/b.Elapsed().Seconds(), "probes/s")
}

// benchMatrix sweeps the full registry × two strategies × two sizes.
func benchMatrix(b *testing.B, parallelism int) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := expensive.NewMatrix(expensive.SeedRange{From: 0, To: 4})
		m.Strategies = []expensive.NamedStrategy{
			{ID: "targeted-withhold", Strategy: expensive.StrategyTargetedWithhold()},
			{ID: "chaos", Strategy: expensive.StrategyChaos()},
		}
		m.Sizes = []expensive.MatrixSize{{N: 4, T: 1}, {N: 5, T: 1}}
		m.Parallelism = parallelism
		grid, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		if !grid.Broken() {
			b.Fatal("matrix found no FloodSet split")
		}
	}
}

func BenchmarkMatrix(b *testing.B) {
	// Registry-wide sweep throughput, serial vs full-width cell pool.
	b.Run("serial", func(b *testing.B) { benchMatrix(b, 1) })
	b.Run("parallel", func(b *testing.B) { benchMatrix(b, 0) })
}

// benchFuzz runs the coverage-guided fuzzer to its first FloodSet split
// at t = n-1 — the adaptive counterpart of benchCampaign's blind sweep.
func benchFuzz(b *testing.B, parallelism int) {
	b.Helper()
	b.ReportAllocs()
	probes := 0
	firstViolation := 0
	for i := 0; i < b.N; i++ {
		proto, _ := expensive.LookupProtocol("floodset")
		f, err := expensive.NewFuzzerFor(proto, expensive.DefaultProtocolParams(4, 3),
			expensive.StrategyRandomSendOmission(40), 2048)
		if err != nil {
			b.Fatal(err)
		}
		f.StopOnViolation = true
		f.Parallelism = parallelism
		rep, err := f.Run()
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Broken() {
			b.Fatal("fuzzer found no FloodSet split within budget")
		}
		probes += rep.Probes
		firstViolation = rep.FirstViolationProbe
	}
	b.ReportMetric(float64(probes)/b.Elapsed().Seconds(), "probes/s")
	b.ReportMetric(float64(firstViolation), "probes-to-violation")
}

func BenchmarkFuzz(b *testing.B) {
	// Adaptive-hunt throughput and probes-to-first-violation, serial vs
	// full-width worker pool.
	b.Run("serial", func(b *testing.B) { benchFuzz(b, 1) })
	b.Run("parallel", func(b *testing.B) { benchFuzz(b, 0) })
}

func BenchmarkShrink(b *testing.B) {
	// Minimization cost of one found FloodSet counterexample.
	n, tf := 8, 2
	factory, rounds := expensive.NewFloodSet(n, tf)
	newAt := func(n, t int) (expensive.Factory, int, error) {
		f, r := expensive.NewFloodSet(n, t)
		return f, r, nil
	}
	c := expensive.NewCampaign("floodset", factory, rounds, n, tf,
		expensive.StrategyTargetedWithhold(), expensive.SeedRange{From: 0, To: 16})
	c.Validity = expensive.CheckWeakValidity
	rep, err := c.Run()
	if err != nil {
		b.Fatal(err)
	}
	if !rep.Broken() {
		b.Fatal("no violation to shrink")
	}
	v := rep.Violations[0]
	opts := expensive.ShrinkOptions{
		Factory: factory, Rounds: rounds, N: n, T: tf,
		New: newAt, Validity: expensive.CheckWeakValidity,
	}
	b.ReportAllocs()
	b.ResetTimer()
	var steps int
	for i := 0; i < b.N; i++ {
		sh, err := expensive.Shrink(v, opts)
		if err != nil {
			b.Fatal(err)
		}
		steps = sh.Steps
	}
	b.ReportMetric(float64(steps), "replays")
}

// BenchmarkBalint is the static-analysis gate's wall time: load the
// whole module, type-check it, build the call graph and taint summaries,
// and run all eight analyzers — the cost every `scripts/lint.sh` run and
// CI lint job pays. A clean tree must yield only suppressed findings.
func BenchmarkBalint(b *testing.B) {
	b.ReportAllocs()
	var findings int
	for i := 0; i < b.N; i++ {
		diags, err := balint.LintModule(".")
		if err != nil {
			b.Fatal(err)
		}
		if n := len(analysis.Unsuppressed(diags)); n != 0 {
			b.Fatalf("%d unsuppressed findings in a clean tree", n)
		}
		findings = len(diags)
	}
	b.ReportMetric(float64(findings), "findings")
}

func BenchmarkCheckCC(b *testing.B) {
	problems := []validity.Problem{
		validity.Weak(5, 2),
		validity.Strong(5, 2),
		validity.Broadcast(5, 2, 0),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, p := range problems {
			res := p.CheckCC()
			if !res.Holds {
				b.Fatalf("%s: CC should hold", p.Name)
			}
		}
	}
}

func BenchmarkEngineRound(b *testing.B) {
	// Raw engine throughput: phase-king at n=64 (quadratic fan-out), at
	// the full Appendix A.1.6 recording tier.
	n := 64
	t := (n - 1) / 4
	f := phaseking.New(phaseking.Config{N: n, T: t})
	benchProtocol(b, f, n, t, phaseking.RoundBound(t))
}

func BenchmarkEngineRoundLean(b *testing.B) {
	// Same run at RecordDecisions: the pooled, allocation-free round loop
	// the probe sweeps ride on.
	n := 64
	t := (n - 1) / 4
	f := phaseking.New(phaseking.Config{N: n, T: t})
	benchProtocolAt(b, f, n, t, phaseking.RoundBound(t), sim.RecordDecisions)
}

func BenchmarkMemClusterRound(b *testing.B) {
	// Live goroutine mesh vs. the simulator: same protocol, real channels.
	n, t := 16, 3
	factory, rounds := expensive.NewWeakConsensusPhaseKing(n, t)
	proposals := make([]expensive.Value, n)
	for i := range proposals {
		proposals[i] = expensive.Bit(i % 2)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mesh := expensive.NewMemMesh(n, nil)
		results, err := expensive.RunCluster(mesh, n, factory, proposals, rounds)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := expensive.ClusterDecision(results, expensive.Universe(n)); err != nil {
			b.Fatal(err)
		}
	}
}
