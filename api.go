package expensive

import (
	"context"
	"io"

	"expensive/internal/adversary"
	"expensive/internal/adversary/fuzz"
	"expensive/internal/catalog"
	_ "expensive/internal/catalog/all" // link every protocol registration
	"expensive/internal/catalog/matrix"
	"expensive/internal/crypto/sig"
	"expensive/internal/dist"
	"expensive/internal/dist/churn"
	"expensive/internal/experiments"
	"expensive/internal/experiments/runner"
	"expensive/internal/lowerbound"
	"expensive/internal/msg"
	"expensive/internal/obs"
	"expensive/internal/omission"
	"expensive/internal/proc"
	"expensive/internal/protocols/external"
	"expensive/internal/protocols/gradecast"
	"expensive/internal/protocols/reduction"
	"expensive/internal/sim"
	"expensive/internal/smr"
	"expensive/internal/solve"
	"expensive/internal/transport"
	"expensive/internal/transport/chaosnet"
	"expensive/internal/transport/memnet"
	"expensive/internal/transport/tcpnet"
	"expensive/internal/validity"
	"expensive/internal/viz"
)

// Core vocabulary. These aliases re-export the internal model types so
// that downstream users can name every value the API returns.
type (
	// Value is a protocol value (proposal or decision).
	Value = msg.Value
	// Message is a round-stamped message between two processes.
	Message = msg.Message
	// ProcessID identifies a process in Π = {0..n-1}.
	ProcessID = proc.ID
	// ProcessSet is a set of process identities.
	ProcessSet = proc.Set
	// Machine is a deterministic per-process protocol state machine.
	Machine = sim.Machine
	// Factory builds the honest machine of one process.
	Factory = sim.Factory
	// Outgoing is a message a machine emits for the next round.
	Outgoing = sim.Outgoing
	// RunConfig parameterizes a simulated run.
	RunConfig = sim.Config
	// Recording selects the trace tier of a run (RecordFull's Appendix
	// A.1.6 message slices vs RecordDecisions' decisions and counts).
	Recording = sim.Recording
	// FaultPlan is the static adversary of a simulated run.
	FaultPlan = sim.FaultPlan
	// Execution is a recorded run (at RecordFull, the Appendix A.1.6
	// object; at RecordDecisions, decisions plus per-round counts).
	Execution = sim.Execution
	// Scheme is a signature scheme (authenticated algorithms, §5.1).
	Scheme = sig.Scheme
	// Problem is a Byzantine agreement problem given by its validity
	// property over finite domains (§4.1).
	Problem = validity.Problem
	// InputConfig assigns proposals to correct processes.
	InputConfig = validity.InputConfig
	// Solvability is the Theorem 4 verdict for a problem.
	Solvability = validity.Solvability
	// Derived is a protocol synthesized from a validity property.
	Derived = solve.Derived
	// FalsifyReport is the outcome of the Theorem 2 falsifier.
	FalsifyReport = lowerbound.Report
	// Violation is a machine-checkable counterexample execution.
	Violation = lowerbound.Violation
	// ExperimentTable is a rendered experiment result.
	ExperimentTable = experiments.Table
	// ExperimentOptions tunes the parallel experiment engine (worker count,
	// cancellation).
	ExperimentOptions = runner.Options
	// ExperimentResult couples an experiment table with wall-clock and
	// probe-count statistics.
	ExperimentResult = runner.Result
	// ExperimentInfo is the registration metadata of one experiment.
	ExperimentInfo = runner.Info
	// NodeResult is the outcome of one live (transport) node.
	NodeResult = transport.NodeResult
	// AttackStrategy is a named, seed-deterministic fault-plan generator.
	AttackStrategy = adversary.Strategy
	// AttackEnv is the probe environment strategies build plans for.
	AttackEnv = adversary.Env
	// Campaign is a seeded adversarial hunt: one strategy versus one
	// protocol over a range of seeds, every probe fully checked.
	Campaign = adversary.Campaign
	// CampaignReport is a campaign's deterministic, JSON-serializable
	// outcome (byte-identical at every parallelism level).
	CampaignReport = adversary.CampaignReport
	// CampaignViolation is a protocol failure found by a campaign probe.
	CampaignViolation = adversary.Violation
	// ExplicitFaultPlan is a materialized, replayable, shrinkable fault plan.
	ExplicitFaultPlan = adversary.ExplicitPlan
	// ShrinkResult is a minimized counterexample.
	ShrinkResult = adversary.ShrinkResult
	// ShrinkOptions parameterize Shrink and RecheckViolation.
	ShrinkOptions = adversary.ShrinkOptions
	// SeedRange is the half-open seed interval a campaign sweeps.
	SeedRange = adversary.SeedRange
	// ValidityCheck is a pluggable per-probe validity property.
	ValidityCheck = adversary.ValidityFunc
	// AgreementCheck is a pairwise decision-compatibility relation that
	// replaces strict equal-decision Agreement in campaigns (graded
	// broadcast's G2/G3).
	AgreementCheck = adversary.AgreementFunc
	// Protocol is a first-class catalog entry: identity, model, resilience
	// condition, requirements, round bound, and builder. Obtain one from
	// Protocols or LookupProtocol; construct with p.Build(params).
	Protocol = catalog.Spec
	// ProtocolParams is the uniform construction input of every cataloged
	// protocol.
	ProtocolParams = catalog.Params
	// ProtocolModel classifies a protocol's fault/authentication setting.
	ProtocolModel = catalog.Model
	// ProtocolParamsError is the typed Build validation failure (wraps
	// ErrUnsupported or ErrBadParams).
	ProtocolParamsError = catalog.ParamsError
	// NamedStrategy couples a short stable ID with an attack strategy.
	NamedStrategy = adversary.Named
	// Fuzzer is a coverage-guided adaptive hunt: plan mutation over a
	// replayable corpus, steered by a lean-tier novelty signal.
	Fuzzer = fuzz.Fuzzer
	// FuzzReport is a fuzzing run's deterministic, JSON-serializable
	// outcome (byte-identical at every parallelism level).
	FuzzReport = fuzz.Report
	// FuzzCorpus is the persisted, replayable population of a fuzzing run.
	FuzzCorpus = fuzz.Corpus
	// FuzzEntry is one corpus member: plan, proposals, coverage hash and
	// mutation provenance.
	FuzzEntry = fuzz.Entry
	// Matrix sweeps protocol × strategy × (n, t) over the worker pool.
	Matrix = matrix.Matrix
	// MatrixSize is one (n, t) grid point of a matrix sweep.
	MatrixSize = matrix.Size
	// MatrixCell is one grid entry (protocol under strategy at a size).
	MatrixCell = matrix.Cell
	// MatrixGrid is a matrix's deterministic, JSON-serializable report.
	MatrixGrid = matrix.Grid
	// DistJob is a distributed campaign definition — one hunt, fuzz or
	// matrix job, serializable to the coordinator/worker wire protocol.
	DistJob = dist.Job
	// DistHuntJob parameterizes a distributed seed campaign.
	DistHuntJob = dist.HuntJob
	// DistFuzzJob parameterizes a distributed coverage-guided hunt.
	DistFuzzJob = dist.FuzzJob
	// DistMatrixJob parameterizes a distributed registry sweep.
	DistMatrixJob = dist.MatrixJob
	// DistCoordinator shards a campaign into deterministic work units over
	// TCP workers and folds the results back byte-identically.
	DistCoordinator = dist.Coordinator
	// DistWorker connects to a coordinator and executes its work units.
	DistWorker = dist.Worker
	// DistReport is a distributed campaign's outcome: the inner engine
	// report (byte-identical to the single-process run) plus scheduling
	// statistics excluded from the JSON encoding.
	DistReport = dist.Report
	// Telemetry is the flight recorder (internal/obs): nil-safe atomic
	// counters, gauges and log-bucketed histograms, plus an optional JSONL
	// trace-event sink. The nil recorder is the off switch — every
	// instrument call on it is one pointer check and zero allocations.
	Telemetry = obs.Recorder
	// TelemetrySink is a Telemetry's JSONL trace-event sink.
	TelemetrySink = obs.Sink
	// TelemetryMetric is one serialized instrument of a Telemetry snapshot.
	TelemetryMetric = obs.Metric
)

// Protocol models.
const (
	Authenticated   = catalog.Authenticated
	Unauthenticated = catalog.Unauthenticated
	CrashOnly       = catalog.CrashOnly
)

// Typed Build failures; match with errors.Is.
var (
	// ErrUnsupported marks an (n, t) outside a protocol's resilience
	// condition.
	ErrUnsupported = catalog.ErrUnsupported
	// ErrBadParams marks structurally invalid protocol parameters.
	ErrBadParams = catalog.ErrBadParams
)

// Binary values.
const (
	Zero = msg.Zero
	One  = msg.One
)

// Bit converts 0/1 to the corresponding binary Value.
func Bit(b int) Value { return msg.Bit(b) }

// NewIdealScheme returns the idealized HMAC-backed signature oracle
// (deterministic, fast — the paper's idealized authenticated setting).
func NewIdealScheme(seed string) Scheme { return sig.NewIdeal(seed) }

// NewEd25519Scheme returns a real Ed25519 scheme with deterministic
// per-process keys for ids 0..n-1 plus extraIDs.
func NewEd25519Scheme(seed string, n int, extraIDs ...ProcessID) Scheme {
	return sig.NewEd25519(seed, n, extraIDs...)
}

// Recording tiers for RunConfig.Recording. RecordFull (the default) keeps
// the complete Appendix A.1.6 trace; RecordDecisions runs the engine's
// allocation-free lean loop recording only decisions and per-round message
// counts — the tier the probe loops (campaigns, matrix, falsifier) sweep
// at, deterministically re-running violating configurations at RecordFull
// for evidence. Full-trace APIs (ValidateExecution, Conforms, swap/merge,
// Shrink) reject lean executions.
const (
	RecordFull      = sim.RecordFull
	RecordDecisions = sim.RecordDecisions
)

// RunProtocol executes a protocol under a fault plan in the synchronous
// simulator and returns the recorded execution.
func RunProtocol(cfg RunConfig, factory Factory, plan FaultPlan) (*Execution, error) {
	return sim.Run(cfg, factory, plan)
}

// NoFaults is the fully-correct fault plan.
func NoFaults() FaultPlan { return sim.NoFaults{} }

// ValidateExecution checks the five Appendix A.1.6 execution guarantees.
func ValidateExecution(e *Execution) error { return omission.Validate(e) }

// The protocol catalog. Every protocol in the library self-registers as
// an introspectable Protocol value carrying its model, resilience
// condition, round bound, builder and validity property; the functions
// below are the query surface, and everything downstream — campaigns,
// matrix sweeps, replicated logs, live clusters — accepts catalog
// handles.

// Protocols returns every registered protocol in ID order.
func Protocols() []Protocol { return catalog.Protocols() }

// LookupProtocol returns the protocol registered under id
// ("dolev-strong", "floodset", "phase-king", ...).
func LookupProtocol(id string) (Protocol, bool) { return catalog.Lookup(id) }

// ProtocolIDs lists the registered protocol IDs in sorted order.
func ProtocolIDs() []string { return catalog.IDs() }

// DefaultProtocolParams returns the canonical parameters at (n, t):
// sender 0, the idealized deterministic scheme, default decision ⊥.
func DefaultProtocolParams(n, t int) ProtocolParams { return catalog.DefaultParams(n, t) }

// Protocol constructors — the matching upper bounds. These are thin,
// legacy-lenient shims over the catalog: they keep their historical
// signatures (no error return, no resilience enforcement) for existing
// callers. New code should prefer LookupProtocol + p.Build(params), which
// validates (n, t) and the scheme/sender/default requirements centrally
// and returns typed errors.

// shim builds a cataloged protocol through the raw (unchecked) builder,
// reproducing the pre-catalog constructor semantics exactly.
func shim(id string, p ProtocolParams) (Factory, int) {
	spec, ok := catalog.Lookup(id)
	if !ok {
		panic("expensive: protocol " + id + " not registered")
	}
	f, err := spec.New(p)
	if err != nil {
		panic("expensive: build " + id + ": " + err.Error())
	}
	return f, spec.Rounds(p.N, p.T)
}

// NewDolevStrongBroadcast returns authenticated Byzantine broadcast with
// designated sender (t < n, t+1 rounds) and its decision-round bound.
func NewDolevStrongBroadcast(n, t int, sender ProcessID, scheme Scheme, defaultValue Value) (Factory, int) {
	return shim("dolev-strong", ProtocolParams{N: n, T: t, Sender: sender, Scheme: scheme, Default: defaultValue})
}

// NewInteractiveConsistency returns authenticated interactive consistency
// (n parallel Dolev-Strong instances, t < n). Decisions are encoded
// vectors; decode with DecodeVector.
func NewInteractiveConsistency(n, t int, scheme Scheme, defaultValue Value) (Factory, int) {
	return shim("ic", ProtocolParams{N: n, T: t, Scheme: scheme, Default: defaultValue})
}

// NewEIGConsistency returns unauthenticated interactive consistency by
// exponential information gathering (n > 3t).
func NewEIGConsistency(n, t int, defaultValue Value) (Factory, int) {
	return shim("eig", ProtocolParams{N: n, T: t, Default: defaultValue})
}

// NewPhaseKing returns binary strong consensus (unauthenticated, n > 4t,
// polynomial messages).
func NewPhaseKing(n, t int) (Factory, int) {
	return shim("phase-king", ProtocolParams{N: n, T: t})
}

// NewWeakConsensusIC returns authenticated weak consensus (any t < n).
func NewWeakConsensusIC(n, t int, scheme Scheme) (Factory, int) {
	return shim("weak-ic", ProtocolParams{N: n, T: t, Scheme: scheme})
}

// NewWeakConsensusEIG returns unauthenticated weak consensus (n > 3t).
func NewWeakConsensusEIG(n, t int) (Factory, int) {
	return shim("weak-eig", ProtocolParams{N: n, T: t})
}

// NewWeakConsensusPhaseKing returns unauthenticated polynomial weak
// consensus (n > 4t).
func NewWeakConsensusPhaseKing(n, t int) (Factory, int) {
	return shim("weak-phase-king", ProtocolParams{N: n, T: t})
}

// NewGradecast returns Feldman–Micali graded broadcast (n > 3t, 3 rounds).
// Decisions encode (grade, value) pairs; parse with ParseGradecast.
func NewGradecast(n, t int, sender ProcessID) (Factory, int) {
	return shim("gradecast", ProtocolParams{N: n, T: t, Sender: sender})
}

// ParseGradecast splits a gradecast decision into grade and value.
func ParseGradecast(out Value) (grade int, v Value, err error) { return gradecast.Parse(out) }

// NewFloodSet returns the crash-model FloodSet consensus (min of values,
// t+1 rounds). It is NOT omission- or Byzantine-tolerant: see experiment
// E10 for the attack that splits it.
func NewFloodSet(n, t int) (Factory, int) {
	return shim("floodset", ProtocolParams{N: n, T: t})
}

// NewFloodSetEarlyStopping returns the early-deciding FloodSet variant:
// decides within f+2 rounds under f <= t actual crashes (experiment E12).
func NewFloodSetEarlyStopping(n, t int) (Factory, int) {
	return shim("floodset-early", ProtocolParams{N: n, T: t})
}

// DecodeVector parses an interactive-consistency decision.
func DecodeVector(v Value) ([]Value, error) { return msg.DecodeVector(v) }

// External Validity (blockchain-style) agreement, §4.3.

// TxAuthority issues and validates client-signed transactions.
type TxAuthority = external.Authority

// NewTxAuthority wraps a scheme holding the client keys.
func NewTxAuthority(scheme Scheme) *TxAuthority { return external.NewAuthority(scheme) }

// ClientID returns the i-th client identity (outside Π) for key setup.
func ClientID(i int) ProcessID { return external.ClientBase + ProcessID(i) }

// NewExternalAgreement returns agreement with External Validity: the
// decision always satisfies authority.Valid. This shim constructs
// directly (not through the catalog) because it honors an explicit
// authority; the cataloged "external" protocol derives its authority from
// the params' scheme.
func NewExternalAgreement(n, t int, scheme Scheme, authority *TxAuthority, fallback Value) (Factory, int) {
	cfg := external.Config{N: n, T: t, Scheme: scheme, Authority: authority, Fallback: fallback}
	return external.New(cfg), external.RoundBound(t)
}

// The lower bound (Theorem 2) as a tool.

// FalsifyWeakConsensus runs the §3 construction against a weak consensus
// protocol with the given decision-round bound. The report either carries
// a Violation — a valid ≤t-fault execution in which weak consensus
// demonstrably fails — or certifies that the probe executions exceeded the
// t²/32 message budget.
func FalsifyWeakConsensus(name string, factory Factory, roundBound, n, t int) (*FalsifyReport, error) {
	return lowerbound.Falsify(name, factory, roundBound, n, t, lowerbound.Options{})
}

// CheckViolation independently re-validates a falsifier certificate:
// execution guarantees, fault budget, machine conformance, and the
// violation itself.
func CheckViolation(v *Violation, factory Factory, roundBound int) error {
	return lowerbound.CheckViolation(v, factory, roundBound)
}

// Solvability (Theorem 4) as a tool.

// WeakProblem, StrongProblem, BroadcastProblem, InteractiveProblem and
// CorrectSourceProblem build the standard validity properties at (n, t).
func WeakProblem(n, t int) Problem   { return validity.Weak(n, t) }
func StrongProblem(n, t int) Problem { return validity.Strong(n, t) }
func BroadcastProblem(n, t int, sender ProcessID) Problem {
	return validity.Broadcast(n, t, sender)
}
func InteractiveProblem(n, t int) Problem   { return validity.Interactive(n, t) }
func CorrectSourceProblem(n, t int) Problem { return validity.CorrectSource(n, t) }

// CheckSolvability evaluates the general solvability theorem for p.
func CheckSolvability(p Problem) Solvability { return p.Solve() }

// SolveAuthenticated derives an authenticated protocol for p (any t < n)
// via Algorithm 2, failing iff the containment condition fails.
func SolveAuthenticated(p Problem, scheme Scheme) (*Derived, error) {
	return solve.Authenticated(p, scheme)
}

// SolveUnauthenticated derives a signature-free protocol for p (n > 3t).
func SolveUnauthenticated(p Problem) (*Derived, error) { return solve.Unauthenticated(p) }

// CheckDerived runs a derived protocol on an input configuration and
// verifies Termination, Agreement and the problem's validity property.
func CheckDerived(p Problem, d *Derived, c InputConfig, byzantine map[ProcessID]Machine) error {
	return solve.Check(p, d, c, byzantine)
}

// NewInputConfig builds an input configuration over Π = {0..n-1}; absent
// processes are the faulty ones.
func NewInputConfig(n int, assign map[ProcessID]Value) (InputConfig, error) {
	return validity.NewConfig(n, assign)
}

// Algorithm 1: weak consensus from any agreement protocol.

// Alg1Spec fixes the reduction's two fully-correct configurations and v'_0.
type Alg1Spec = reduction.Alg1Spec

// DeriveWeakFromAgreement computes v'_0 (by running P's fully-correct
// execution on c0) and returns the zero-message Algorithm 1 wrapper.
func DeriveWeakFromAgreement(inner Factory, n, t, horizon int, c0, c1 []Value) (Factory, Alg1Spec, error) {
	spec, err := reduction.DeriveAlg1(inner, n, t, horizon, c0, c1)
	if err != nil {
		return nil, Alg1Spec{}, err
	}
	return reduction.WeakFromAgreement(inner, spec), spec, nil
}

// Adversary hunting: composable attack strategies, parallel seeded
// campaigns, and counterexample shrinking (see internal/adversary).

// NewCampaign builds a hunt of the given strategy against a protocol: n
// and t fix the system, factory/rounds the target, and seeds the range of
// deterministic probes. Tune the returned campaign (Validity, Shrink,
// Parallelism, New for n-shrinking) before calling Run.
func NewCampaign(protocol string, factory Factory, rounds, n, t int, strategy AttackStrategy, seeds SeedRange) *Campaign {
	return &Campaign{
		Protocol: protocol,
		Factory:  factory,
		Rounds:   rounds,
		N:        n,
		T:        t,
		Strategy: strategy,
		Seeds:    seeds,
	}
}

// NewProblemCampaign builds a hunt against a problem's derived protocol,
// checking the problem's own validity property on every probe.
func NewProblemCampaign(p Problem, d *Derived, strategy AttackStrategy, seeds SeedRange) (*Campaign, error) {
	return solve.HuntCampaign(p, d, strategy, seeds)
}

// NewCampaignFor builds a hunt of the given strategy against a cataloged
// protocol: the factory, round bound, validity property and n-shrinking
// rebuild hook all come from the catalog handle. Params are validated
// centrally — hunting outside the resilience condition is a typed error.
func NewCampaignFor(p Protocol, params ProtocolParams, strategy AttackStrategy, seeds SeedRange) (*Campaign, error) {
	return matrix.CampaignFor(p, params, strategy, seeds)
}

// ShrinkOptionsFor derives the Shrink/RecheckViolation configuration for
// violations found against a cataloged protocol.
func ShrinkOptionsFor(p Protocol, params ProtocolParams) (ShrinkOptions, error) {
	return matrix.ShrinkOptionsFor(p, params)
}

// StrategyLibrary returns the named attack library in ID order; biasPct
// parameterizes the random-omission family.
func StrategyLibrary(biasPct int) []NamedStrategy { return adversary.Library(biasPct) }

// Observability. Telemetry is a strict side channel: attach a recorder to
// the Ctx of a Campaign, Fuzzer, Matrix, ExperimentOptions or falsifier
// Options via WithTelemetry and the engines count probes, time them into
// histograms and emit structured trace events — while every JSON report
// stays byte-identical with telemetry on or off, at every parallelism
// level. With no recorder attached (the default) the instrumented hot
// loops pay one nil check per call and allocate nothing.

// NewTelemetry returns an empty flight recorder.
func NewTelemetry() *Telemetry { return obs.New() }

// NewTelemetrySink returns a JSONL trace-event sink writing to w; attach
// it with Telemetry.SetSink to capture campaign/fuzz/matrix span events.
func NewTelemetrySink(w io.Writer) *TelemetrySink { return obs.NewSink(w) }

// WithTelemetry attaches the recorder to a context for an engine's Ctx
// field. A nil recorder is fine and means "telemetry off".
func WithTelemetry(ctx context.Context, r *Telemetry) context.Context { return obs.Into(ctx, r) }

// TelemetryFrom returns the recorder attached to ctx, or nil — the same
// lookup the engines perform once per run.
func TelemetryFrom(ctx context.Context) *Telemetry { return obs.From(ctx) }

// Adaptive fuzzing: coverage-guided plan mutation over the lean-probe
// engine (see internal/adversary/fuzz). Where a campaign sweeps fresh
// seeds blindly, a fuzzer mutates a corpus of explicit fault plans and
// keeps every probe that exercises novel engine behavior, so the search
// concentrates on the rare corner cases the lower bound lives in.

// NewFuzzer builds a coverage-guided hunt against a protocol: n and t fix
// the system, factory/rounds the target, seed the strategy whose plans
// populate generation 0, and budget the total number of candidate probes.
// Tune the returned fuzzer (Validity, Shrink, Corpus, StopOnViolation,
// Parallelism, New for n-shrinking) before calling Run.
func NewFuzzer(protocol string, factory Factory, rounds, n, t int, seed AttackStrategy, budget int) *Fuzzer {
	return &Fuzzer{
		Protocol: protocol,
		Factory:  factory,
		Rounds:   rounds,
		N:        n,
		T:        t,
		Seed:     seed,
		Budget:   budget,
	}
}

// NewFuzzerFor builds a coverage-guided hunt against a cataloged
// protocol: the factory, round bound, validity property and n-shrinking
// rebuild hook all come from the catalog handle, with central Params
// validation.
func NewFuzzerFor(p Protocol, params ProtocolParams, seed AttackStrategy, budget int) (*Fuzzer, error) {
	return matrix.FuzzerFor(p, params, seed, budget)
}

// NewFuzzCorpus returns an empty corpus for the given target, ready to be
// attached to a Fuzzer and persisted with Save.
func NewFuzzCorpus(protocol string, n, t int) *FuzzCorpus { return fuzz.NewCorpus(protocol, n, t) }

// LoadFuzzCorpus reads a corpus saved by FuzzCorpus.Save, for resuming a
// hunt or replaying its entries.
func LoadFuzzCorpus(path string) (*FuzzCorpus, error) { return fuzz.LoadCorpus(path) }

// NewMatrix builds a registry-driven sweep of every registered protocol ×
// every library strategy × the default (n, t) grid over the given seed
// range. Tune the returned matrix (Protocols, Strategies, Sizes, Shrink,
// Parallelism) before calling Run; the JSON grid report is byte-identical
// at every parallelism level, with unsupported (n, t) cells explicitly
// marked skipped.
func NewMatrix(seeds SeedRange) *Matrix { return &Matrix{Seeds: seeds} }

// Distributed campaigns: shard a hunt, fuzz or matrix campaign across
// worker processes over TCP (internal/dist). The coordinator cuts the
// job into worker-count-independent units, folds results in unit order,
// and optionally checkpoints progress — the report (and fuzz corpus)
// stays byte-identical to the single-process run at any worker count,
// join order, or death schedule, including after a kill and resume.

// NewDistCampaign builds a coordinator for the given job. Tune it
// (Addr, LocalWorkers, CheckpointPath, HeartbeatTimeout, Corpus, Ctx)
// before calling Run; Start first to learn ListenAddr for remote
// workers.
func NewDistCampaign(job *DistJob) *DistCoordinator { return &DistCoordinator{Job: job} }

// NewDistWorker builds a worker for the coordinator at addr. Tune it
// (Name, Parallelism, DialAttempts, Ctx) before calling Run, which
// serves work units until the coordinator says done.
func NewDistWorker(addr string) *DistWorker { return &DistWorker{Addr: addr} }

// Strategy constructors — the attack library.

// StrategyRandomSendOmission drops a random faulty subset's outbound
// messages with the given percentage.
func StrategyRandomSendOmission(biasPct int) AttackStrategy {
	return adversary.RandomSendOmission(biasPct)
}

// StrategyRandomReceiveOmission drops a random faulty subset's inbound
// messages with the given percentage.
func StrategyRandomReceiveOmission(biasPct int) AttackStrategy {
	return adversary.RandomReceiveOmission(biasPct)
}

// StrategyRandomOmission drops a random faulty subset's inbound and
// outbound messages with the given percentage (the full §3 omission
// adversary, randomized).
func StrategyRandomOmission(biasPct int) AttackStrategy { return adversary.RandomOmission(biasPct) }

// StrategyTargetedWithhold is the targeted last-round-reveal attack that
// separates the crash model from the omission model (E10).
func StrategyTargetedWithhold() AttackStrategy { return adversary.TargetedWithhold() }

// StrategySilentCrash crashes random processes with partial delivery.
func StrategySilentCrash() AttackStrategy { return adversary.SilentCrash() }

// StrategySenderIsolation receive-isolates a random group from a random
// round on (the paper's Definition 1 pattern, randomized).
func StrategySenderIsolation() AttackStrategy { return adversary.SenderIsolation() }

// StrategyChaos replaces random processes with Byzantine chatterers.
func StrategyChaos() AttackStrategy { return adversary.Chaos() }

// StrategyEquivocate replaces random processes with equivocators that
// tell half of Π "0" and the other half "1".
func StrategyEquivocate() AttackStrategy { return adversary.Equivocate() }

// StrategyTwoFaced replaces random processes with machines running two
// honest protocol copies with opposite proposals, one per peer group.
func StrategyTwoFaced() AttackStrategy { return adversary.TwoFaced() }

// StrategyUnion combines two strategies, splitting the fault budget.
func StrategyUnion(a, b AttackStrategy) AttackStrategy { return adversary.Union(a, b) }

// StrategyWindowed gates a strategy's omissions to rounds [lo, hi].
func StrategyWindowed(s AttackStrategy, lo, hi int) AttackStrategy {
	return adversary.Windowed(s, lo, hi)
}

// StrategyBiased keeps each omission of the inner strategy only with the
// given percentage.
func StrategyBiased(s AttackStrategy, keepPct int) AttackStrategy {
	return adversary.Biased(s, keepPct)
}

// Validity properties for campaigns.

// CheckWeakValidity is the paper's Weak Validity (vacuous under faults).
func CheckWeakValidity(proposals []Value, correct ProcessSet, decision Value) error {
	return adversary.WeakValidity(proposals, correct, decision)
}

// CheckStrongValidity requires unanimous correct proposals to win.
func CheckStrongValidity(proposals []Value, correct ProcessSet, decision Value) error {
	return adversary.StrongValidity(proposals, correct, decision)
}

// CheckSenderValidity requires a correct designated sender's proposal to win.
func CheckSenderValidity(sender ProcessID) ValidityCheck { return adversary.SenderValidity(sender) }

// Shrink minimizes a campaign violation into a 1-minimal explicit fault
// plan, re-validating every candidate against the execution guarantees
// and machine conformance.
func Shrink(v *CampaignViolation, opts ShrinkOptions) (*ShrinkResult, error) {
	return adversary.Shrink(v, opts)
}

// RecheckViolation independently re-validates a campaign violation (and
// its shrunken counterexample, when present), CheckViolation-style.
func RecheckViolation(v *CampaignViolation, opts ShrinkOptions) error {
	return adversary.Recheck(v, opts)
}

// Experiments.

// RunExperiment executes one of the paper experiments E1–E12 with its
// recorded default parameters and full parallelism.
func RunExperiment(id string) (*ExperimentTable, error) { return experiments.Run(id) }

// RunExperiments executes the given experiments (all of them when ids is
// empty) on the parallel engine and returns per-experiment tables with
// wall-clock and probe-count statistics. Experiments run one after
// another; the requested parallelism fans out each experiment's
// independent simulation probes. Tables are byte-identical at every
// parallelism level.
func RunExperiments(opts ExperimentOptions, ids ...string) ([]*ExperimentResult, error) {
	return runner.RunMany(ids, opts)
}

// ListExperiments returns the registered experiments — ID, title, and
// recorded default parameters — in registration order.
func ListExperiments() []ExperimentInfo { return runner.List() }

// ExperimentIDs lists the available experiment IDs.
func ExperimentIDs() []string { return experiments.AllIDs() }

// Live transports.

// Mesh is a live message mesh usable with RunCluster.
type Mesh interface {
	Endpoints() []transport.Endpoint
}

// NewMemMesh returns an in-process goroutine mesh; drop may be nil or a
// transport-level omission filter (from, to, round) -> drop payload.
func NewMemMesh(n int, drop func(from, to ProcessID, round int) bool) Mesh {
	var filter memnet.DropFilter
	if drop != nil {
		filter = memnet.DropFilter(drop)
	}
	return memnet.New(n, filter)
}

// NewTCPMesh returns a TCP loopback mesh of n nodes. Close it via any
// endpoint when done.
func NewTCPMesh(n int) (Mesh, error) { return tcpnet.New(n) }

// RunCluster drives one machine per process over the mesh for the given
// number of rounds and returns per-node results.
func RunCluster(m Mesh, n int, factory Factory, proposals []Value, rounds int) ([]NodeResult, error) {
	c := transport.Cluster{N: n, Endpoints: m.Endpoints(), Factory: factory, Proposals: proposals, Rounds: rounds}
	return c.Run()
}

// RunClusterFor drives the cataloged protocol live over the mesh for its
// full round bound, with central Params validation.
func RunClusterFor(m Mesh, p Protocol, params ProtocolParams, proposals []Value) ([]NodeResult, error) {
	return matrix.ClusterFor(p, params, m.Endpoints(), proposals)
}

// ClusterDecision folds node results into the unique decision of a group.
func ClusterDecision(results []NodeResult, group ProcessSet) (Value, error) {
	return transport.CommonDecision(results, group)
}

// Universe returns the full process set {0..n-1}.
func Universe(n int) ProcessSet { return proc.Universe(n) }

// NewProcessSet builds a process set from ids.
func NewProcessSet(ids ...ProcessID) ProcessSet { return proc.NewSet(ids...) }

// State machine replication (the paper's motivating application).

// ReplicatedLog is a deterministic log driven by repeated agreement.
type ReplicatedLog = smr.Log

// LogEntry is one committed slot of a replicated log.
type LogEntry = smr.Entry

// NewReplicatedLog builds a replicated log whose slots each run one
// instance of the given agreement protocol.
func NewReplicatedLog(n, t int, protocol func(slot int) (Factory, int), noOp Value) (*ReplicatedLog, error) {
	return smr.New(smr.Config{N: n, T: t, Protocol: protocol, NoOp: noOp})
}

// NewReplicatedLogFor builds a replicated log whose slots each run one
// instance of the cataloged protocol, constructed with central Params
// validation.
func NewReplicatedLogFor(p Protocol, params ProtocolParams, noOp Value) (*ReplicatedLog, error) {
	return matrix.LogFor(p, params, noOp)
}

// Chaos & soak testing: deterministic wire faults, worker churn, and the
// live replicated log with online safety/liveness monitors.

type (
	// ChaosRule is one composable fault rule of a chaos plan: a kind, a
	// firing percentage, and an optional seq window.
	ChaosRule = chaosnet.Rule
	// ChaosPlan is a frozen fault schedule: every fault is a pure function
	// of (seed, link, seq), so a chaotic run replays exactly.
	ChaosPlan = chaosnet.Plan
	// ChaosEnv describes the mesh a chaos plan draws against.
	ChaosEnv = chaosnet.Env
	// ChaosFaults is one (link, seq)'s verdict: which faults fire.
	ChaosFaults = chaosnet.Faults
	// ChaosProfile is a named chaos plan constructor (flaky, storm, ...).
	ChaosProfile = chaosnet.Profile
	// ChurnEvent schedules one worker-process kill.
	ChurnEvent = churn.Event
	// ChurnHarness SIGKILLs and respawns worker processes on a schedule.
	ChurnHarness = churn.Harness
	// LiveReplicatedLog commits replicated-log slots over a real transport
	// mesh with online safety and liveness monitors.
	LiveReplicatedLog = smr.LiveLog
	// LiveReplicatedLogConfig parameterizes a live replicated log.
	LiveReplicatedLogConfig = smr.LiveConfig
	// SafetyDivergence is a recorded safety-monitor violation: trusted
	// replicas disagreed at a slot.
	SafetyDivergence = smr.Divergence
)

// Chaos fault kinds.
const (
	ChaosDrop      = chaosnet.Drop
	ChaosDelay     = chaosnet.Delay
	ChaosDuplicate = chaosnet.Duplicate
	ChaosReorder   = chaosnet.Reorder
	ChaosCorrupt   = chaosnet.Corrupt
	ChaosCut       = chaosnet.Cut
	ChaosPartition = chaosnet.Partition
)

// ErrCoordinatorDrained is returned by a drained DistCoordinator's Run:
// progress was checkpointed, no new units will be assigned.
var ErrCoordinatorDrained = dist.ErrDrained

// NewChaosPlan freezes a deterministic fault schedule over a mesh.
func NewChaosPlan(name string, seed int64, env ChaosEnv, rules ...ChaosRule) *ChaosPlan {
	return chaosnet.NewPlan(name, seed, env, rules...)
}

// ChaosProfiles returns the built-in chaos profile library.
func ChaosProfiles() []ChaosProfile { return chaosnet.Library() }

// ChaosProfileByID looks a built-in chaos profile up.
func ChaosProfileByID(id string) (ChaosProfile, bool) { return chaosnet.ByID(id) }

// WrapChaos wraps every endpoint of a mesh in the plan's deterministic
// faults; rec (nil-safe) records injected faults in the flight recorder.
func WrapChaos(m Mesh, plan *ChaosPlan, rec *Telemetry) Mesh {
	return chaosMesh{chaosnet.Wrap(m.Endpoints(), plan, rec)}
}

type chaosMesh struct{ eps []transport.Endpoint }

func (m chaosMesh) Endpoints() []transport.Endpoint { return m.eps }

// ParseChurnSchedule parses a kill schedule like "400ms:0,900ms:1"
// (kill slot 0 at 400ms, slot 1 at 900ms).
func ParseChurnSchedule(s string) ([]ChurnEvent, error) { return churn.Parse(s) }

// DistSerial runs a distributed job in-process on the single campaign
// engine — the byte-identity oracle every soak compares against.
func DistSerial(ctx context.Context, job *DistJob) (*DistReport, error) {
	return dist.Serial(ctx, job)
}

// NewLiveReplicatedLog builds a replicated log that commits slots over
// the configured transport mesh with online monitors armed.
func NewLiveReplicatedLog(cfg LiveReplicatedLogConfig) (*LiveReplicatedLog, error) {
	return smr.NewLive(cfg)
}

// RenderExecution draws an execution as a per-process, per-round text
// timeline in the visual language of the paper's Figures 1-2.
func RenderExecution(e *Execution, maxRounds int, groups map[string]ProcessSet) string {
	return viz.Timeline(e, viz.Options{MaxRounds: maxRounds, Groups: groups})
}
