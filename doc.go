// Package expensive is an executable reproduction of "All Byzantine
// Agreement Problems are Expensive" (Civit, Gilbert, Guerraoui, Komatovic,
// Paramonov, Vidigueira; PODC 2024, arXiv:2311.08060).
//
// The paper proves that every non-trivial Byzantine agreement problem
// requires Ω(t²) exchanged messages in the worst case, even in synchrony
// and even against mere omission faults, and characterizes exactly which
// agreement problems are solvable at all (the containment condition).
// This library turns each of those results into running code:
//
//   - A deterministic synchronous simulator recording the full Appendix-A
//     trace model (fragments, behaviors, executions) with Byzantine and
//     omission adversaries. See RunProtocol.
//   - The lower-bound machinery of §3 — isolation, swap_omission, merge —
//     packaged as a falsifier: hand it any weak consensus protocol and it
//     either constructs a machine-checked counterexample execution or
//     certifies that the protocol paid the quadratic price. See
//     FalsifyWeakConsensus.
//   - The validity-property formalism of §4/§5 with exact finite-domain
//     checkers for triviality and the containment condition, and automatic
//     protocol derivation (Algorithm 2 over interactive consistency) for
//     every solvable problem. See SolveAuthenticated and SolveUnauthenticated.
//   - The classical matching protocols: Dolev-Strong broadcast,
//     authenticated and EIG interactive consistency, Phase-King, plus the
//     zero-message reductions of Algorithms 1 and 2. See the New*
//     constructors.
//   - Live deployment substrates: an in-memory goroutine mesh and a TCP
//     loopback mesh running the same machines over real channels. See
//     NewMemMesh and NewTCPMesh.
//
// The experiments E1–E9 (RunExperiment) regenerate every table and figure
// of the paper's argument; EXPERIMENTS.md records the outputs.
package expensive
