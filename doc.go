// Package expensive is an executable reproduction of "All Byzantine
// Agreement Problems are Expensive" (Civit, Gilbert, Guerraoui, Komatovic,
// Paramonov, Vidigueira; PODC 2024, arXiv:2311.08060).
//
// The paper proves that every non-trivial Byzantine agreement problem
// requires Ω(t²) exchanged messages in the worst case, even in synchrony
// and even against mere omission faults, and characterizes exactly which
// agreement problems are solvable at all (the containment condition).
// This library turns each of those results into running code:
//
//   - A deterministic synchronous simulator recording the full Appendix-A
//     trace model (fragments, behaviors, executions) with Byzantine and
//     omission adversaries. See RunProtocol.
//   - The lower-bound machinery of §3 — isolation, swap_omission, merge —
//     packaged as a falsifier: hand it any weak consensus protocol and it
//     either constructs a machine-checked counterexample execution or
//     certifies that the protocol paid the quadratic price. See
//     FalsifyWeakConsensus.
//   - The validity-property formalism of §4/§5 with exact finite-domain
//     checkers for triviality and the containment condition, and automatic
//     protocol derivation (Algorithm 2 over interactive consistency) for
//     every solvable problem. See SolveAuthenticated and SolveUnauthenticated.
//   - The classical matching protocols: Dolev-Strong broadcast,
//     authenticated and EIG interactive consistency, Phase-King, plus the
//     zero-message reductions of Algorithms 1 and 2 — all first-class
//     values in the protocol catalog. See Protocols and LookupProtocol.
//   - Live deployment substrates: an in-memory goroutine mesh and a TCP
//     loopback mesh running the same machines over real channels. See
//     NewMemMesh and NewTCPMesh.
//
// # The experiment engine
//
// The experiments E1–E12 regenerate every table and figure of the paper's
// argument. Each one is registered by ID, with its recorded default
// parameters, in the parallel experiment engine
// (internal/experiments/runner): a worker-pool executor that fans out an
// experiment's *independent* simulation probes — per-candidate falsifier
// sweeps, (n, t) grid points, Lemma 4 interpolation families — across
// runtime.NumCPU() workers while keeping each probe a single-threaded,
// deterministic sim.Run. Probe analysis is sequential in construction
// order, so a registered experiment produces byte-identical tables at
// every parallelism level (this is tested).
//
//   - RunExperiment runs one experiment with default parallelism.
//   - RunExperiments runs many, returning JSON-serializable tables plus
//     wall-clock and probe-count statistics per experiment.
//   - ListExperiments enumerates the registry.
//
// The same engine backs the CLI:
//
//	baexp exp                     # run all experiments, NumCPU workers
//	baexp exp -parallel 1 E1      # force the serial path
//	baexp exp -json E6 E9         # structured results for tooling
//	baexp exp -list               # show the registry
//	baexp falsify -parallel 8 ... # parallel probes in the falsifier
//
// Adding a new experiment is one Register call at package init (see
// internal/experiments/register.go for the canonical examples):
//
//	runner.Register(runner.Experiment{
//	    ID:     "E13",
//	    Title:  "my new experiment",
//	    Params: "n=10 t=3",
//	    Run: func(o runner.Options) (*runner.Table, error) {
//	        return E13(10, 3, o) // fan out independent probes via runner.Map
//	    },
//	})
//
// The experiment function receives the engine options and uses runner.Map
// (deterministic index-ordered fan-out) or runner.Prefetch (speculative
// probe computation with early-exit consumption) for its independent
// units; everything it returns must depend only on its inputs so tables
// stay reproducible.
//
// # Adversary hunting
//
// The adversary subsystem (internal/adversary) generalizes the paper's
// hand-built attacks into a reusable layer: a library of composable,
// seed-deterministic attack strategies, a campaign engine that fans seed
// ranges out over the worker pool, and a shrinker that minimizes every
// found violation into a machine-checkable counterexample.
//
// A quickstart — rediscover and minimize the E10 attack that splits the
// crash-tolerant FloodSet under omission faults:
//
//	factory, rounds := expensive.NewFloodSet(8, 2)
//	c := expensive.NewCampaign("floodset", factory, rounds, 8, 2,
//	    expensive.StrategyTargetedWithhold(), expensive.SeedRange{From: 0, To: 64})
//	c.Validity = expensive.CheckWeakValidity
//	c.Shrink = true
//	report, _ := c.Run()          // finds the agreement split
//	v := report.Violations[0]     // v.Shrunk is the minimal fault plan
//
// Strategies cover random and targeted send/receive omission
// (StrategyRandomOmission, StrategyTargetedWithhold), silent crashes,
// Definition 1 group isolation, and Byzantine machines — chatterers,
// equivocators, and two-faced honest twins (StrategyChaos,
// StrategyEquivocate, StrategyTwoFaced) — plus combinators:
// StrategyUnion splits the fault budget between two attacks,
// StrategyWindowed gates omissions to a round interval, StrategyBiased
// attenuates them per message. Everything derives from the probe's seed,
// so campaigns replay bit-for-bit and reports are byte-identical at every
// parallelism level (tested, like the experiment tables).
//
// Every probe is checked for Termination, Agreement, and a pluggable
// validity property (CheckWeakValidity, CheckStrongValidity,
// CheckSenderValidity, or a Problem's own admissibility via
// NewProblemCampaign); every violating probe additionally passes the full
// evidence pipeline — the five Appendix A.1.6 execution guarantees,
// honest-machine conformance (sim.Conforms), and extraction of an
// explicit, JSON-serializable fault plan. Shrink reduces violations —
// fewer corrupted processes, fewer omitted messages, smaller n — and
// RecheckViolation re-validates the final certificate from scratch,
// exactly like the falsifier's CheckViolation. (Set Campaign.RecordFull
// to run the evidence pipeline on every probe, violating or not — see
// the recording tiers below.)
//
// The same engine backs the CLI:
//
//	baexp hunt                                  # targeted withholding vs FloodSet
//	baexp hunt -proto phase-king -strategy storm -n 9 -t 2
//	baexp hunt -seeds 0:512 -parallel 8 -json   # deterministic JSON report
//	baexp hunt -list                            # protocols and strategies
//
// # Adaptive fuzzing
//
// Campaigns sweep fresh seeds blindly; the coverage-guided fuzzer
// (internal/adversary/fuzz, NewFuzzer/NewFuzzerFor, `baexp fuzz`) hunts
// adaptively. It grows a corpus of explicit fault plans and mutates them
// — adding single omissions and round-interval streaks, dropping,
// retargeting and round-shifting them, promoting omission-faulty
// processes to Byzantine machines, crossing corpus parents over,
// re-seeding proposal vectors — and keeps every candidate whose lean
// RecordDecisions execution hashes to a coverage signature (per-round
// sent/omitted/received count vectors plus the decision pattern) never
// seen before. Novel probes enter a persisted, replayable JSON corpus
// (FuzzCorpus.Save / LoadFuzzCorpus; each entry records plan, proposals,
// coverage hash and mutation provenance), and violating probes flow into
// the campaign evidence pipeline unchanged: deterministic RecordFull
// replay, Appendix A.1.6 validation, machine conformance, plan
// extraction, shrinking, RecheckViolation.
//
// The determinism guarantee carries over: scheduling is
// generation-batched — candidates are derived sequentially from the
// corpus as it stood at the start of the generation, probed in parallel
// on the runner pool, and folded back in slot order — so the FuzzReport
// and the corpus are byte-identical at every parallelism level, exactly
// like campaign reports and matrix grids. FuzzReport.FirstViolationProbe
// (and the matching CampaignReport field) records probes-to-first-
// violation; scripts/bench.sh compares the two on FloodSet at t = n-1,
// where blind sweeping essentially never finds the E10 split and the
// fuzzer reaches it within a few thousand probes:
//
//	f, _ := expensive.NewFuzzerFor(proto, params,
//	    expensive.StrategyRandomSendOmission(40), 2048)
//	f.Shrink = true
//	report, _ := f.Run()          // report.Violations[0].Shrunk, corpus in f.Corpus
//
//	baexp fuzz -n 4 -t 3 -budget 2048 -stop     # the same hunt from the CLI
//	baexp fuzz -corpus hunt.json -json          # persist + resume the corpus
//
// # The protocol catalog
//
// The paper's theorems quantify over every Byzantine agreement protocol;
// the catalog (internal/catalog) is the matching abstraction. A Protocol
// is a first-class spec — ID, title, model (authenticated /
// unauthenticated / crash), resilience condition as predicate and
// human-readable string, round bound, builder, optional decision decoder,
// and its validity property — and every protocol package self-registers
// at init, so listings, sweeps and lookups all derive from one registry:
//
//	p, _ := expensive.LookupProtocol("phase-king")
//	p.SupportedAt(5, 1)                     // true: n > 4t
//	factory, rounds, err := p.Build(expensive.DefaultProtocolParams(5, 1))
//
// Build validates parameters centrally: t >= n, an (n, t) outside the
// resilience condition, or a missing scheme/sender/default yields a typed
// error (ErrUnsupported, ErrBadParams, *ProtocolParamsError) instead of a
// protocol that silently misbehaves. Campaigns, replicated logs and live
// clusters accept catalog handles directly (NewCampaignFor,
// NewReplicatedLogFor, RunClusterFor), with the validity property and the
// shrinker's rebuild hook supplied by the spec.
//
// Migration note: the legacy New* constructors (NewPhaseKing,
// NewFloodSet, NewDolevStrongBroadcast, ...) are now thin shims over the
// catalog. Their signatures and semantics are unchanged — they still
// construct without resilience enforcement — but new code should prefer
// LookupProtocol + Build for the checked path.
//
// On top of the registry sits the matrix engine (catalog/matrix,
// expensive.Matrix): the full protocol × strategy × (n, t) cross-product
// fanned over the runner worker pool, skipping unsupported cells by
// resilience predicate and reporting a deterministic JSON grid that is
// byte-identical at every parallelism level:
//
//	m := expensive.NewMatrix(expensive.SeedRange{From: 0, To: 64})
//	grid, _ := m.Run()   // every protocol × every strategy × 4:1, 5:1, 8:2
//
//	baexp matrix                       # the same sweep from the CLI
//	baexp matrix -json -parallel 8     # deterministic grid for tooling
//	baexp matrix -list                 # registry + strategy library
//
// # Distributed campaigns
//
// One process tops out at NumCPU probes in flight; the dist subsystem
// (internal/dist, NewDistCampaign/NewDistWorker, `baexp coord` /
// `baexp worker`) shards a hunt, fuzz or matrix campaign across OS
// processes over a length-prefixed JSON TCP protocol. The coordinator
// cuts the job into work units whose shape depends only on the job —
// never on the worker population — and folds results back in unit
// order, so the merged report (and the fuzz corpus) is byte-identical
// to the single-process run at any worker count, join order or death
// schedule. Progress optionally checkpoints to JSON after every unit;
// a restarted coordinator re-issues only the incomplete units and the
// final report is byte-identical to an uninterrupted run. Workers
// heartbeat; a silent worker's in-flight unit is reassigned:
//
//	job := &expensive.DistJob{Kind: "hunt", Hunt: &expensive.DistHuntJob{
//	    Protocol: "floodset", Strategy: "targeted-withhold",
//	    N: 8, T: 2, Seeds: expensive.SeedRange{From: 0, To: 4096},
//	}}
//	c := expensive.NewDistCampaign(job)
//	c.LocalWorkers = 4               // in-process workers over loopback TCP
//	report, _ := c.Run()             // report.Hunt byte-identical to a local hunt
//
//	baexp coord -workers 4 -checkpoint cp.json   # the same from the CLI
//	baexp worker -coord host:9000                # join from another machine
//
// # Chaos and soak testing
//
// The chaos layer makes hostility deterministic so robustness is a test
// assertion. A ChaosPlan (internal/transport/chaosnet, NewChaosPlan /
// ChaosProfiles / WrapChaos) freezes composable fault rules — drop,
// delay, duplicate, reorder, corrupt, cut, windowed partitions — where
// every fault is a pure function of (seed, link, seq); it wraps any
// transport mesh and any worker's coordinator link (`baexp worker
// -chaos`). A ChurnHarness (internal/dist/churn, ParseChurnSchedule)
// SIGKILLs and respawns worker processes on a schedule. The hardened
// coordinator reassigns a live straggler's unit past its deadline,
// quarantines a unit that exhausts its retry budget instead of hanging
// (DistReport.Quarantined), and drains on demand — SIGTERM to `baexp
// coord` checkpoints in-flight progress and exits resumable
// (ErrCoordinatorDrained). `baexp soak` runs a campaign under churn and
// chaos and demands byte-identity with the serial oracle (DistSerial);
// `baexp soak -kind smr` drives a LiveReplicatedLog — replicated-log
// slots over a chaosnet-wrapped mesh — with online safety and liveness
// monitors (NewLiveReplicatedLog, SafetyDivergence).
//
// # Performance: recording tiers
//
// Every result in this library is bought with probe volume — the
// falsifier families, hunt campaigns and matrix sweeps run sim.Run
// millions of rounds — so the engine records at two tiers
// (RunConfig.Recording):
//
//   - RecordFull (default): the complete Appendix A.1.6 trace, four
//     message slices per process per round. Required by everything that
//     reads message identities: ValidateExecution, sim.Conforms, the
//     omission machinery (swap, merge, isolation checks), Shrink and
//     RecheckViolation.
//   - RecordDecisions: per-process decisions and per-round message
//     counts, no message slices, produced by a pooled, allocation-free
//     round loop. Enough for Termination/Agreement/validity verdicts,
//     round counts and the paper's message-complexity metric
//     (Execution.CorrectMessages reads the lean counts directly).
//
// The probe loops combine them CheckViolation-style: campaigns, the
// matrix and the falsifier probe at RecordDecisions, and any probe that
// violates a property — or whose analysis needs message identities (a
// Lemma 2 swap candidate, a merge input) — is deterministically re-run at
// RecordFull, where the full validation pipeline runs before the trace
// becomes evidence. The engine is deterministic, so the replay reproduces
// the lean probe exactly, and every report (CampaignReport, Grid,
// experiment tables) is byte-identical between tiers and at every
// parallelism level — enforced by TestCampaignTierEquivalence across the
// whole protocol registry. Full-trace APIs reject lean executions with a
// descriptive error rather than misreading absent slices as silence.
//
// scripts/bench.sh records the perf trajectory: it runs the tracked
// benchmark set (hunt campaign throughput, matrix sweeps, the falsifier,
// raw engine rounds) and emits a committed BENCH_<date>.json of ns/op,
// allocs/op and probes/s.
//
// # Observability
//
// The probe engines carry a flight recorder (internal/obs): attach a
// Telemetry via WithTelemetry to the Ctx of a Campaign, Fuzzer, Matrix,
// ExperimentOptions or falsifier Options and the run counts probes into
// atomic counters, times them into log-bucketed histograms, and emits
// structured JSONL trace events (campaign-start, violation-found,
// shrink-step, generation, matrix-cell) into an optional TelemetrySink.
// Telemetry is a strict side channel — it reads counters and the clock
// but feeds nothing back — so every report and corpus stays
// byte-identical with telemetry on or off, and with no recorder attached
// (the default) each instrument call on the hot path costs one nil
// pointer check and zero allocations (pinned by test and benchmark). The
// baexp subcommands surface the recorder as -progress (live stderr lines
// with probes/s and ETA plus a final summary block), -metrics-out (JSONL
// events + metrics snapshot) and -pprof (net/http/pprof, expvar and a
// /metrics endpoint).
//
// # Static analysis
//
// The contracts above — byte-identical reports at every parallelism
// level and recording tier, lean probes never touching full-trace APIs,
// every protocol discoverable through the registry — are enforced
// mechanically, not just by tests. The balint suite (internal/analysis,
// cmd/balint, `baexp lint`) runs eight analyzers over the whole module:
// maporder (no map iteration on report-encoding paths unless the keys
// are collected and sorted), wallclock (no time.Now/time.Since in probe
// or fold code outside the runner.Stopwatch wrappers and the sanctioned
// internal/obs clock-owning package), globalrand (no
// process-global math/rand), leantier (no full-trace-only API reachable
// from a RecordDecisions probe loop unless guarded on the recording
// tier), and regcheck (a package defining a catalog.Spec must Register
// it at init and be linked into internal/catalog/all).
//
// Three more ride on a forward taint engine (internal/analysis/taint —
// intraprocedural fixpoint plus one-level interprocedural summaries
// over the shared call graph) and on call-graph v2's go-statement and
// channel-operation sites: obstaint (telemetry- and stopwatch-derived
// values must not reach an encoded report field or a json.Marshal
// argument; matrix.Grid.Timing is the sanctioned -timing sink and
// runner.Result.wall_ms carries an explicit allow), errcmp (sentinel
// errors classify via errors.Is, never ==/switch, and fmt.Errorf wraps
// them with %w so classification survives wrapping), and goleak (every
// goroutine launched in dist, transport, smr, churn and obs must be
// provably stoppable — unbounded loops need a done/ctx receive or a
// Recv/Accept-and-return shape, and unseen bodies need a documented
// lifetime). Deliberate exceptions carry a `//balint:allow <analyzer>
// <reason>` directive — the reason is mandatory, and scripts/lint.sh
// (run by CI on every push) fails on any unsuppressed finding; `balint
// -json` emits the full findings array, suppressed ones marked, which
// CI uploads as a build artifact.
package expensive
