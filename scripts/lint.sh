#!/usr/bin/env sh
# lint.sh — the repo's static-analysis gate, as CI runs it.
#
# Builds cmd/balint from the tree (the linter is part of the module, so
# the gate always matches the checked-out contracts), runs it over the
# whole module, and follows with plain `go vet`. balint exits non-zero
# on any unsuppressed finding; a //balint:allow directive needs an
# analyzer name and a reason, and malformed directives are themselves
# findings.
#
# Usage:
#   scripts/lint.sh          # lint the module
#   scripts/lint.sh -v       # also print suppressed findings with reasons
#   scripts/lint.sh -json    # findings (suppressed included) as one JSON
#                            # array on stdout — the CI artifact; balint's
#                            # human output and go vet's stay on stderr
set -eu

cd "$(dirname "$0")/.."

mkdir -p bin
go build -o bin/balint ./cmd/balint

echo "balint ./..." >&2
./bin/balint "$@" .

echo "go vet ./..." >&2
go vet ./...
