#!/usr/bin/env sh
# bench.sh — record the repo's performance trajectory.
#
# Runs the tracked benchmark set and emits BENCH_<date>.json mapping each
# benchmark to ns/op, B/op, allocs/op and any custom metrics it reports
# (probes/s, msgs, replays, ...). Commit the output next to the previous
# BENCH_*.json files so every perf PR has a recorded before/after.
#
# Usage:
#   scripts/bench.sh                    # tracked set, 3 iterations each
#   scripts/bench.sh 'BenchmarkMatrix'  # custom -bench regex
#   BENCHTIME=10x scripts/bench.sh      # custom -benchtime
#   OUT=custom.json scripts/bench.sh    # custom output path
set -eu

cd "$(dirname "$0")/.."

PATTERN="${1:-BenchmarkHuntCampaign|BenchmarkMatrix|BenchmarkE1Falsifier|BenchmarkEngineRound|BenchmarkShrink|BenchmarkE9Protocols}"
BENCHTIME="${BENCHTIME:-3x}"
OUT="${OUT:-BENCH_$(date +%Y-%m-%d).json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "running: go test . -run '^$' -bench '$PATTERN' -benchtime $BENCHTIME -benchmem" >&2
go test . -run '^$' -bench "$PATTERN" -benchtime "$BENCHTIME" -benchmem | tee "$RAW" >&2

awk -v date="$(date +%Y-%m-%d)" -v gover="$(go env GOVERSION)" -v benchtime="$BENCHTIME" '
BEGIN {
    printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"benchmarks\": {\n", date, gover, benchtime
    first = 1
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    line = ""
    # fields come in (value, unit) pairs after the iteration count
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_", unit)
        if (line != "") line = line ", "
        line = line sprintf("\"%s\": %s", unit, $i)
    }
    if (line == "") next
    if (!first) printf ",\n"
    first = 0
    printf "    \"%s\": {%s}", name, line
}
END { printf "\n  }\n}\n" }
' "$RAW" > "$OUT"

echo "wrote $OUT" >&2
