#!/usr/bin/env sh
# bench.sh — record the repo's performance trajectory.
#
# Runs the tracked benchmark set and emits BENCH_<date>.json mapping each
# benchmark to ns/op, B/op, allocs/op and any custom metrics it reports
# (probes/s, msgs, replays, ...), plus the adaptive-vs-blind hunting
# comparison: probes to the first FloodSet (t = n-1) violation for
# `baexp fuzz` and the blind `baexp hunt` sweep at the same seed strategy
# and probe budget (0 = never found within budget). Commit the output next
# to the previous BENCH_*.json files so every perf PR has a recorded
# before/after.
#
# Usage:
#   scripts/bench.sh                    # tracked set, 3 iterations each
#   scripts/bench.sh 'BenchmarkMatrix'  # custom -bench regex
#   BENCHTIME=10x scripts/bench.sh      # custom -benchtime
#   OUT=custom.json scripts/bench.sh    # custom output path
#   BUDGET=4096 scripts/bench.sh        # custom fuzz-vs-hunt probe budget
set -eu

cd "$(dirname "$0")/.."

PATTERN="${1:-BenchmarkHuntCampaign|BenchmarkMatrix|BenchmarkE1Falsifier|BenchmarkEngineRound|BenchmarkShrink|BenchmarkE9Protocols|BenchmarkFuzz|BenchmarkObs|BenchmarkBalint}"
BENCHTIME="${BENCHTIME:-3x}"
BUDGET="${BUDGET:-2048}"
OUT="${OUT:-BENCH_$(date +%Y-%m-%d).json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "running: go test . -run '^$' -bench '$PATTERN' -benchtime $BENCHTIME -benchmem" >&2
go test . -run '^$' -bench "$PATTERN" -benchtime "$BENCHTIME" -benchmem | tee "$RAW" >&2

# Probes-to-first-violation: the adaptive fuzzer vs the blind seeded sweep,
# same target (FloodSet at t = n-1), same seed strategy, same budget.
echo "running: fuzz-vs-hunt comparison (floodset n=4 t=3, budget $BUDGET)" >&2
FUZZ_FIRST="$(go run ./cmd/baexp fuzz -proto floodset -n 4 -t 3 -strategy random-send-omission \
    -budget "$BUDGET" -stop -shrink=false -json |
    sed -n 's/.*"first_violation_probe": *\([0-9]*\).*/\1/p' | head -n 1)"
HUNT_FIRST="$(go run ./cmd/baexp hunt -proto floodset -n 4 -t 3 -strategy random-send-omission \
    -seeds "0:$BUDGET" -shrink=false -keep 1 -json |
    sed -n 's/.*"first_violation_probe": *\([0-9]*\).*/\1/p' | head -n 1)"
echo "fuzz first violation at probe ${FUZZ_FIRST:-0}, blind hunt at probe ${HUNT_FIRST:-0} (0 = none in budget)" >&2

awk -v date="$(date +%Y-%m-%d)" -v gover="$(go env GOVERSION)" -v benchtime="$BENCHTIME" \
    -v budget="$BUDGET" -v fuzzfirst="${FUZZ_FIRST:-0}" -v huntfirst="${HUNT_FIRST:-0}" '
BEGIN {
    printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"benchmarks\": {\n", date, gover, benchtime
    first = 1
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    line = ""
    # fields come in (value, unit) pairs after the iteration count
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_", unit)
        if (line != "") line = line ", "
        line = line sprintf("\"%s\": %s", unit, $i)
    }
    if (line == "") next
    if (!first) printf ",\n"
    first = 0
    printf "    \"%s\": {%s}", name, line
}
END {
    printf "\n  },\n"
    printf "  \"fuzz_vs_hunt\": {\n"
    printf "    \"target\": \"floodset n=4 t=3 (t = n-1), seed strategy random-send-omission(40%%)\",\n"
    printf "    \"budget\": %s,\n", budget
    printf "    \"fuzz_first_violation_probe\": %s,\n", fuzzfirst
    printf "    \"hunt_first_violation_probe\": %s\n", huntfirst
    printf "  }\n}\n"
}
' "$RAW" > "$OUT"

echo "wrote $OUT" >&2
